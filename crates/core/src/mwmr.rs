//! The multi-writer multi-reader (MWMR) extension of the emulation.
//!
//! The paper presents the single-writer protocol and notes the extension to
//! multiple writers; it became folklore immediately (and is spelled out in
//! the follow-up literature, e.g. Lynch–Shvartsman's RAMBO). Two changes:
//!
//! * labels become [`Tag`]s — `(sequence, writer-id)` pairs ordered
//!   lexicographically, so concurrent writers never produce equal labels;
//! * a **write** gains a query phase: the writer first asks a read quorum
//!   for their current tags, then writes with
//!   `(max_seq + 1, writer_id)` to a write quorum. Both reads and writes
//!   are therefore two round trips, `4(n−1)` messages with majorities.
//!
//! Reads are identical to the single-writer protocol, write-back included
//! — and so are the optional read modes
//! ([`read_mode`](MwmrConfig::read_mode)):
//! [`ReadMode::FastUnanimous`](crate::types::ReadMode) elides the
//! write-back when the query quorum was unanimous about the maximum tag and
//! itself forms a write quorum, completing in `2(n−1)` messages (see
//! [`fast_read_allowed`](crate::quorum::fast_read_allowed)), and
//! [`ReadMode::Relay`](crate::types::ReadMode) runs the server-to-server
//! relay read of the SWMR protocol verbatim with tags as labels — 1.5
//! rounds for *every* read at `n² − 1` messages (see [`crate::swmr`]'s
//! "Relay reads" section for the protocol and its safety argument; tag
//! comparison is the only difference). Writes always keep both phases:
//! their query round is what orders concurrent writers.

// The declared phase graph (see the `phase-graph` lint rule). Both reads
// and writes query first: `WriteQuery -> WriteUpdate` and `ReadQuery ->
// ReadWriteBack` keep the two-phase order, and the two kinds never cross.
// `Invoke -> *` short-circuits are the instant-quorum paths.
// `Invoke -> RelayRead -> Done` is the relay read mode: the reader parks
// in a single RelayRead phase and completes on a write quorum of direct
// server replies.
// abd-lint: phase-spec(mwmr):
//   Invoke -> WriteQuery, Invoke -> ReadQuery, Invoke -> WriteUpdate,
//   Invoke -> ReadWriteBack, Invoke -> Done,
//   Invoke -> RelayRead, RelayRead -> Done,
//   WriteQuery -> WriteUpdate, WriteQuery -> Done,
//   ReadQuery -> ReadWriteBack, ReadQuery -> Done,
//   WriteUpdate -> Done, ReadWriteBack -> Done,
//   Restart -> Recovery, Recovery -> Idle

use crate::context::{Effects, Protocol, ReadPathStats, TimerKey};
use crate::msg::{RegisterMsg, RegisterOp, RegisterResp};
use crate::phase::{PhaseTracker, RelayCensus, TagCensus};
use crate::procset::ProcSet;
use crate::quorum::{fast_read_allowed, Majority, QuorumSystem};
use crate::replica::Replica;
use crate::retransmit::{BackoffPolicy, Retransmitter};
use crate::types::{Consistency, Nanos, OpId, ProcessId, ReadMode, Tag};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Wire message of the MWMR protocol.
pub type MwmrMsg<V> = RegisterMsg<Tag, V>;

/// Configuration of one MWMR node.
#[derive(Clone, Debug)]
pub struct MwmrConfig {
    /// Cluster size.
    pub n: usize,
    /// This node's id.
    pub me: ProcessId,
    /// Quorum system consulted by all phases.
    ///
    /// Must satisfy read/write *and* write/write intersection
    /// ([`QuorumSystem::validate`] with `multi_writer = true`).
    pub quorum: Arc<dyn QuorumSystem>,
    /// Whether reads perform the write-back phase (`true` = atomic,
    /// `false` = regular baseline).
    pub read_write_back: bool,
    /// How reads complete: the two-round baseline, the unanimity fast path
    /// (see [`fast_read_allowed`]), or server-to-server relay.
    /// [`ReadMode::TwoRound`] by default.
    pub read_mode: ReadMode,
    /// Retransmission policy for unfinished phases (`None` = reliable
    /// links, no retransmission).
    pub retransmit: Option<BackoffPolicy>,
}

impl MwmrConfig {
    /// Majority quorums, write-back on, no retransmission.
    pub fn new(n: usize, me: ProcessId) -> Self {
        MwmrConfig {
            n,
            me,
            quorum: Arc::new(Majority::new(n)),
            read_write_back: true,
            read_mode: ReadMode::TwoRound,
            retransmit: None,
        }
    }

    /// Replaces the quorum system.
    pub fn with_quorum(mut self, q: Arc<dyn QuorumSystem>) -> Self {
        self.quorum = q;
        self
    }

    /// Enables or disables the read write-back phase.
    pub fn with_read_write_back(mut self, yes: bool) -> Self {
        self.read_write_back = yes;
        self
    }

    /// Selects how reads complete (see [`ReadMode`]).
    pub fn with_read_mode(mut self, mode: ReadMode) -> Self {
        self.read_mode = mode;
        self
    }

    /// Enables adaptive retransmission for lossy links (exponential
    /// backoff from `every`, capped, jittered; see [`BackoffPolicy::new`]).
    pub fn with_retransmit(mut self, every: Nanos) -> Self {
        self.retransmit = Some(BackoffPolicy::new(every));
        self
    }

    /// Sets an explicit retransmission policy.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.retransmit = Some(policy);
        self
    }
}

#[derive(Clone, Debug)]
enum Pending<V> {
    /// Writer discovering the current maximum tag.
    WriteQuery {
        op: OpId,
        ph: PhaseTracker,
        best: Tag,
        value: V,
    },
    /// Writer propagating its new `(tag, value)`.
    WriteUpdate {
        op: OpId,
        ph: PhaseTracker,
        tag: Tag,
        value: V,
    },
    /// Reader collecting `(tag, value)` replies; the census tracks the max
    /// tag and whether the responders were unanimous about it (fast path).
    /// `cons` is the read's requested tier: `Regular` completes without the
    /// write-back, `Atomic` runs the full second phase.
    ReadQuery {
        op: OpId,
        ph: PhaseTracker,
        census: TagCensus<Tag, V>,
        cons: Consistency,
    },
    /// Reader writing back the value it is about to return.
    ReadWriteBack {
        op: OpId,
        ph: PhaseTracker,
        tag: Tag,
        value: V,
    },
    /// Relay-mode reader collecting direct server replies; completes on a
    /// write quorum of them, returning the census's minimum pair. The
    /// tracker starts empty: even this node's own reply only counts once
    /// its server-side round completes.
    RelayRead {
        op: OpId,
        ph: PhaseTracker,
        census: RelayCensus<Tag, V>,
    },
}

impl<V> Pending<V> {
    fn phase(&self) -> &PhaseTracker {
        match self {
            Pending::WriteQuery { ph, .. }
            | Pending::WriteUpdate { ph, .. }
            | Pending::ReadQuery { ph, .. }
            | Pending::ReadWriteBack { ph, .. }
            | Pending::RelayRead { ph, .. } => ph,
        }
    }
}

/// Post-restart catch-up query phase (see [`crate::swmr`] module docs for
/// the stable-storage model it completes).
#[derive(Clone, Debug)]
struct Recovery<V> {
    ph: PhaseTracker,
    best_tag: Tag,
    best_value: V,
}

/// One processor of the MWMR emulation. Every processor may read and write.
///
/// # Examples
///
/// ```
/// use abd_core::context::{Effects, Protocol};
/// use abd_core::msg::{RegisterOp, RegisterResp};
/// use abd_core::mwmr::{MwmrConfig, MwmrNode};
/// use abd_core::types::{OpId, ProcessId};
///
/// // n = 1: the node is its own quorum, operations complete locally.
/// let mut node = MwmrNode::new(MwmrConfig::new(1, ProcessId(0)), String::new());
/// let mut fx = Effects::new();
/// node.on_invoke(OpId(0), RegisterOp::Write("hi".to_string()), &mut fx);
/// node.on_invoke(OpId(1), RegisterOp::Read, &mut fx);
/// assert_eq!(fx.responses[1].1, RegisterResp::ReadOk("hi".to_string()));
/// ```
#[derive(Clone, Debug)]
pub struct MwmrNode<V> {
    cfg: MwmrConfig,
    replica: Replica<Tag, V>,
    next_uid: u64,
    pending: Option<Pending<V>>,
    queue: VecDeque<(OpId, RegisterOp<V>)>,
    rtx: Retransmitter,
    recovering: Option<Recovery<V>>,
    /// Server-side relay rounds in progress, keyed by `(reader, uid)` —
    /// see [`crate::swmr`]. Volatile, cleared on restart.
    relays: BTreeMap<(ProcessId, u64), PhaseTracker>,
    /// Highest relay round uid completed here per reader. Volatile.
    relay_done: BTreeMap<ProcessId, u64>,
    fast_reads: u64,
    write_backs: u64,
    relay_reads: u64,
    sc_reads: u64,
    regular_reads: u64,
}

impl<V: Clone + std::fmt::Debug + Send + 'static> MwmrNode<V> {
    /// Creates a node holding `initial` under [`Tag::initial`].
    pub fn new(cfg: MwmrConfig, initial: V) -> Self {
        assert!(cfg.me.index() < cfg.n, "node id out of range");
        assert_eq!(
            cfg.quorum.n(),
            cfg.n,
            "quorum system sized for a different cluster"
        );
        let rtx = Retransmitter::new(cfg.retransmit, cfg.me);
        MwmrNode {
            cfg,
            replica: Replica::new(Tag::initial(), initial),
            next_uid: 0,
            pending: None,
            queue: VecDeque::new(),
            rtx,
            recovering: None,
            relays: BTreeMap::new(),
            relay_done: BTreeMap::new(),
            fast_reads: 0,
            write_backs: 0,
            relay_reads: 0,
            sc_reads: 0,
            regular_reads: 0,
        }
    }

    /// This node's replica state `(tag, value)`.
    pub fn replica_state(&self) -> (Tag, V) {
        self.replica.snapshot()
    }

    /// Whether an operation is currently in flight on this node.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether the node is catching up after a restart.
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// Messages this node has retransmitted over its lifetime.
    pub fn retransmissions(&self) -> u64 {
        self.rtx.retransmissions()
    }

    /// The node's configuration.
    pub fn config(&self) -> &MwmrConfig {
        &self.cfg
    }

    /// Reads issued here that completed on the one-round fast path.
    pub fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    /// Reads issued here that executed the write-back phase.
    pub fn write_backs(&self) -> u64 {
        self.write_backs
    }

    /// Reads issued here that completed via server-to-server relay.
    pub fn relay_reads(&self) -> u64 {
        self.relay_reads
    }

    /// Reads issued here that completed at `Consistency::Sequential`
    /// (served locally, zero network rounds).
    pub fn sc_reads(&self) -> u64 {
        self.sc_reads
    }

    /// Reads issued here that completed at `Consistency::Regular` (query
    /// round only, write-back elided).
    pub fn regular_reads(&self) -> u64 {
        self.regular_reads
    }

    fn fresh_uid(&mut self) -> u64 {
        self.next_uid += 1;
        self.next_uid
    }

    fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.cfg.n)
            .map(ProcessId)
            .filter(move |&p| p != self.cfg.me)
    }

    fn broadcast(&self, msg: MwmrMsg<V>, fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>) {
        for p in self.others() {
            fx.send(p, msg.clone());
        }
    }

    fn arm_timer(&mut self, uid: u64, fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>) {
        self.rtx.arm(uid, fx);
    }

    fn disarm_timer(&mut self, uid: u64, fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>) {
        self.rtx.disarm(uid, fx);
    }

    /// Completes the post-restart catch-up: adopt the freshest pair a read
    /// quorum reported, then serve anything queued while recovering.
    fn finish_recovery(
        &mut self,
        tag: Tag,
        value: V,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        self.recovering = None;
        self.replica.adopt(tag, value);
        if self.pending.is_none() {
            if let Some((next_op, next_input)) = self.queue.pop_front() {
                self.begin(next_op, next_input, fx);
            }
        }
    }

    fn finish(
        &mut self,
        op: OpId,
        resp: RegisterResp<V>,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        self.pending = None;
        fx.respond(op, resp);
        if let Some((next_op, next_input)) = self.queue.pop_front() {
            self.begin(next_op, next_input, fx);
        }
    }

    fn begin(
        &mut self,
        op: OpId,
        input: RegisterOp<V>,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        debug_assert!(self.pending.is_none());
        match input {
            RegisterOp::Write(v) => {
                let uid = self.fresh_uid();
                let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
                let best = self.replica.label();
                if self.cfg.quorum.is_read_quorum(ph.responders()) {
                    self.enter_write_update(op, best, v, fx);
                    return;
                }
                self.pending = Some(Pending::WriteQuery {
                    op,
                    ph,
                    best,
                    value: v,
                });
                self.broadcast(RegisterMsg::Query { uid }, fx);
                self.arm_timer(uid, fx);
            }
            RegisterOp::Read => self.begin_read(op, Consistency::Atomic, fx),
            RegisterOp::ReadAt(cons) => self.begin_read(op, cons, fx),
        }
    }

    fn begin_read(
        &mut self,
        op: OpId,
        cons: Consistency,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        if cons == Consistency::Sequential {
            // SC-ABD: serve the local replica with no network round — safe
            // for the same reasons as the SWMR protocol (replica tags only
            // ever advance; see DESIGN.md's consistency-tier section).
            self.sc_reads += 1;
            let (_, value) = self.replica.snapshot();
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        if cons == Consistency::Atomic && self.cfg.read_mode == ReadMode::Relay {
            self.begin_relay_read(op, fx);
            return;
        }
        // Regular reads ignore `read_mode`: the relay round replaces the
        // write-back, which a regular read skips anyway.
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        let (tag, value) = self.replica.snapshot();
        let census = TagCensus::new(tag, value);
        if self.cfg.quorum.is_read_quorum(ph.responders()) {
            self.complete_read_query(op, ph.responders(), census, cons, fx);
            return;
        }
        self.pending = Some(Pending::ReadQuery {
            op,
            ph,
            census,
            cons,
        });
        self.broadcast(RegisterMsg::Query { uid }, fx);
        self.arm_timer(uid, fx);
    }

    /// The read's query phase holds a read quorum: a `Regular`-tier read
    /// completes here with the census maximum; an atomic read takes the
    /// one-round fast path if the responders were unanimous and form a
    /// write quorum, the two-phase slow path otherwise.
    fn complete_read_query(
        &mut self,
        op: OpId,
        responders: &ProcSet,
        census: TagCensus<Tag, V>,
        cons: Consistency,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        if cons == Consistency::Regular {
            self.regular_reads += 1;
            let (tag, value) = census.into_best();
            // Adopt locally even though the write-back is skipped, so a
            // later Sequential read on this node cannot regress below a
            // value this node has already returned.
            self.replica.adopt(tag, value.clone());
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        if self.cfg.read_mode == ReadMode::FastUnanimous
            && self.cfg.read_write_back
            && fast_read_allowed(self.cfg.quorum.as_ref(), responders, census.unanimous())
        {
            self.fast_reads += 1;
            let (_, value) = census.into_best();
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        let (tag, value) = census.into_best();
        self.enter_read_write_back(op, tag, value, fx);
    }

    /// Second phase of a write: stamp the value with a tag strictly larger
    /// than every tag seen in the query phase and propagate it.
    fn enter_write_update(
        &mut self,
        op: OpId,
        max_seen: Tag,
        v: V,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        let tag = max_seen.next(self.cfg.me);
        self.replica.adopt(tag, v.clone());
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        if self.cfg.quorum.is_write_quorum(ph.responders()) {
            self.finish(op, RegisterResp::WriteOk, fx);
            return;
        }
        self.pending = Some(Pending::WriteUpdate {
            op,
            ph,
            tag,
            value: v.clone(),
        });
        self.broadcast(
            RegisterMsg::Update {
                uid,
                label: tag,
                value: v,
            },
            fx,
        );
        self.arm_timer(uid, fx);
    }

    /// Second phase of a read (or immediate completion for the regular
    /// baseline).
    fn enter_read_write_back(
        &mut self,
        op: OpId,
        tag: Tag,
        value: V,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        if !self.cfg.read_write_back {
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        self.write_backs += 1;
        self.replica.adopt(tag, value.clone());
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        if self.cfg.quorum.is_write_quorum(ph.responders()) {
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        self.pending = Some(Pending::ReadWriteBack {
            op,
            ph,
            tag,
            value: value.clone(),
        });
        self.broadcast(
            RegisterMsg::Update {
                uid,
                label: tag,
                value,
            },
            fx,
        );
        self.arm_timer(uid, fx);
    }

    /// Opens a relay read — identical to the SWMR version (see
    /// [`crate::swmr`]), with tags as labels.
    fn begin_relay_read(&mut self, op: OpId, fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>) {
        let uid = self.fresh_uid();
        self.pending = Some(Pending::RelayRead {
            op,
            ph: PhaseTracker::new_empty(uid, self.cfg.n),
            census: RelayCensus::new(),
        });
        let (label, value) = self.replica.snapshot();
        self.broadcast(RegisterMsg::RelayQuery { uid, label, value }, fx);
        self.arm_timer(uid, fx);
        self.relay_observe(self.cfg.me, uid, self.cfg.me, fx);
    }

    /// Whether relay round `(reader, uid)` has already completed here.
    fn relay_round_done(&self, reader: ProcessId, uid: u64) -> bool {
        self.relay_done
            .get(&reader)
            .is_some_and(|&done| done >= uid)
    }

    /// Sends this server's forward for round `(reader, uid)` to `targets`.
    fn relay_fwd_to(
        &self,
        targets: &[ProcessId],
        reader: ProcessId,
        uid: u64,
        echo: bool,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        let (label, value) = self.replica.snapshot();
        for &p in targets {
            fx.send(
                p,
                RegisterMsg::RelayFwd {
                    uid,
                    reader,
                    label,
                    value: value.clone(),
                    echo,
                },
            );
        }
    }

    /// Records `from`'s forward in server round `(reader, uid)`, creating
    /// the round (and broadcasting our own forward) on first contact; once
    /// the forwards cover a read quorum, the done floor advances and our
    /// replica snapshot goes to the reader as its direct reply.
    fn relay_observe(
        &mut self,
        reader: ProcessId,
        uid: u64,
        from: ProcessId,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        let (n, me) = (self.cfg.n, self.cfg.me);
        let created = !self.relays.contains_key(&(reader, uid));
        if created {
            // Readers are sequential and uids increase: contact for round
            // `uid` means earlier rounds from this reader are abandoned.
            self.relays.retain(|&(r, u), _| r != reader || u >= uid);
            self.relays
                .insert((reader, uid), PhaseTracker::new(uid, n, me));
        }
        let complete = match self.relays.get_mut(&(reader, uid)) {
            Some(ph) => {
                ph.record(from, uid);
                self.cfg.quorum.is_read_quorum(ph.responders())
            }
            None => false,
        };
        if !complete {
            if created && reader != me {
                let targets: Vec<ProcessId> = self.others().collect();
                self.relay_fwd_to(&targets, reader, uid, false, fx);
            }
            return;
        }
        // The tracker stays behind (pruned when the reader's next round
        // arrives) so stragglers are told apart from true duplicates.
        let floor = self.relay_done.entry(reader).or_insert(0);
        *floor = (*floor).max(uid);
        let (label, value) = self.replica.snapshot();
        if reader == me {
            self.relay_reply_in(me, uid, label, value, fx);
        } else {
            fx.send(reader, RegisterMsg::RelayReply { uid, label, value });
        }
    }

    /// Reader-side processing of one direct server reply; completes the
    /// read on a write quorum of replies with the census's minimum pair —
    /// see [`crate::swmr`] for why the minimum is the safe choice.
    fn relay_reply_in(
        &mut self,
        from: ProcessId,
        uid: u64,
        label: Tag,
        value: V,
        fx: &mut Effects<MwmrMsg<V>, RegisterResp<V>>,
    ) {
        let Some(Pending::RelayRead { ph, census, .. }) = self.pending.as_mut() else {
            return;
        };
        if !ph.record(from, uid) {
            return;
        }
        census.observe(label, value);
        if !self.cfg.quorum.is_write_quorum(ph.responders()) {
            return;
        }
        if let Some(Pending::RelayRead { op, census, .. }) = self.pending.take() {
            self.disarm_timer(uid, fx);
            self.relay_reads += 1;
            let (label, value) = match census.into_min() {
                Some(best) => best,
                // Unreachable — a write quorum is never empty — but total.
                None => self.replica.snapshot(),
            };
            self.replica.adopt(label, value.clone());
            self.finish(op, RegisterResp::ReadOk(value), fx);
        }
    }

    fn phase_message(&self) -> Option<MwmrMsg<V>> {
        match self.pending.as_ref()? {
            Pending::WriteQuery { ph, .. } | Pending::ReadQuery { ph, .. } => {
                Some(RegisterMsg::Query { uid: ph.uid() })
            }
            Pending::WriteUpdate { ph, tag, value, .. }
            | Pending::ReadWriteBack { ph, tag, value, .. } => Some(RegisterMsg::Update {
                uid: ph.uid(),
                label: *tag,
                value: value.clone(),
            }),
            Pending::RelayRead { ph, .. } => {
                // Retransmit the query with the *current* snapshot —
                // monotone above the original.
                let (label, value) = self.replica.snapshot();
                Some(RegisterMsg::RelayQuery {
                    uid: ph.uid(),
                    label,
                    value,
                })
            }
        }
    }
}

impl<V: Clone + std::fmt::Debug + Send + 'static> Protocol for MwmrNode<V> {
    type Msg = MwmrMsg<V>;
    type Op = RegisterOp<V>;
    type Resp = RegisterResp<V>;

    fn id(&self) -> ProcessId {
        self.cfg.me
    }

    fn on_invoke(
        &mut self,
        op: OpId,
        input: RegisterOp<V>,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        if self.pending.is_some() || self.recovering.is_some() {
            self.queue.push_back((op, input));
        } else {
            self.begin(op, input, fx);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: MwmrMsg<V>,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        match msg {
            // ---- replica role ----
            RegisterMsg::Query { uid } => {
                let (label, value) = self.replica.snapshot();
                fx.send(from, RegisterMsg::QueryReply { uid, label, value });
            }
            RegisterMsg::Update { uid, label, value } => {
                self.replica.adopt(label, value);
                fx.send(from, RegisterMsg::UpdateAck { uid });
            }
            // ---- client role ----
            RegisterMsg::QueryReply { uid, label, value } => {
                if let Some(rec) = self.recovering.as_mut() {
                    if !rec.ph.record(from, uid) {
                        return;
                    }
                    if label > rec.best_tag {
                        rec.best_tag = label;
                        rec.best_value = value;
                    }
                    if self.cfg.quorum.is_read_quorum(rec.ph.responders()) {
                        if let Some(rec) = self.recovering.take() {
                            self.disarm_timer(uid, fx);
                            self.finish_recovery(rec.best_tag, rec.best_value, fx);
                        }
                    }
                    return;
                }
                // Completion takes the pending op inside its own arm (the
                // same shape as the SWMR protocol) so each query kind
                // advances only along its own phase edge.
                match self.pending.as_mut() {
                    Some(Pending::WriteQuery { ph, best, .. }) => {
                        if !ph.record(from, uid) {
                            return;
                        }
                        if label > *best {
                            *best = label;
                        }
                        if self.cfg.quorum.is_read_quorum(ph.responders()) {
                            if let Some(Pending::WriteQuery {
                                op, best, value: v, ..
                            }) = self.pending.take()
                            {
                                self.disarm_timer(uid, fx);
                                self.enter_write_update(op, best, v, fx);
                            }
                        }
                    }
                    Some(Pending::ReadQuery { ph, census, .. }) => {
                        if !ph.record(from, uid) {
                            return;
                        }
                        census.observe(label, value);
                        if self.cfg.quorum.is_read_quorum(ph.responders()) {
                            if let Some(Pending::ReadQuery {
                                op,
                                ph,
                                census,
                                cons,
                            }) = self.pending.take()
                            {
                                self.disarm_timer(uid, fx);
                                self.complete_read_query(op, ph.responders(), census, cons, fx);
                            }
                        }
                    }
                    _ => {}
                }
            }
            // ---- relay read: server and reader roles ----
            RegisterMsg::RelayQuery { uid, label, value } => {
                self.replica.adopt(label, value);
                if self.relay_round_done(from, uid) {
                    // Reader retransmission after our round completed: both
                    // our forward and our reply may have been lost.
                    self.relay_fwd_to(&[from], from, uid, true, fx);
                    let (label, value) = self.replica.snapshot();
                    fx.send(from, RegisterMsg::RelayReply { uid, label, value });
                    return;
                }
                let repeat = self
                    .relays
                    .get(&(from, uid))
                    .is_some_and(|ph| ph.responders().contains(from));
                if repeat {
                    // Duplicate query while still gathering: re-send our
                    // forward to unheard peers and the stuck reader.
                    let mut targets = Vec::new();
                    if let Some(ph) = self.relays.get(&(from, uid)) {
                        targets = ph.missing();
                    }
                    targets.push(from);
                    self.relay_fwd_to(&targets, from, uid, false, fx);
                    return;
                }
                self.relay_observe(from, uid, from, fx);
            }
            RegisterMsg::RelayFwd {
                uid,
                reader,
                label,
                value,
                echo,
            } => {
                self.replica.adopt(label, value);
                let repeat = self
                    .relays
                    .get(&(reader, uid))
                    .is_some_and(|ph| ph.responders().contains(from));
                if repeat {
                    if !echo {
                        // Echo our snapshot so the stuck sender's tracker
                        // can count us; echoes are never answered.
                        self.relay_fwd_to(&[from], reader, uid, true, fx);
                    }
                    return;
                }
                if self.relay_round_done(reader, uid) {
                    // Straggler for a completed round: record it silently.
                    if let Some(ph) = self.relays.get_mut(&(reader, uid)) {
                        ph.record(from, uid);
                    }
                    return;
                }
                self.relay_observe(reader, uid, from, fx);
            }
            RegisterMsg::RelayReply { uid, label, value } => {
                self.replica.adopt(label, value.clone());
                self.relay_reply_in(from, uid, label, value, fx);
            }
            RegisterMsg::UpdateAck { uid } => {
                let done = match self.pending.as_mut() {
                    Some(Pending::WriteUpdate { op, ph, .. }) => {
                        if ph.record(from, uid) && self.cfg.quorum.is_write_quorum(ph.responders())
                        {
                            Some((*op, RegisterResp::WriteOk))
                        } else {
                            None
                        }
                    }
                    Some(Pending::ReadWriteBack { op, ph, value, .. }) => {
                        if ph.record(from, uid) && self.cfg.quorum.is_write_quorum(ph.responders())
                        {
                            Some((*op, RegisterResp::ReadOk(value.clone())))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((op, resp)) = done {
                    self.disarm_timer(uid, fx);
                    self.finish(op, resp, fx);
                }
            }
        }
    }

    fn on_timer(&mut self, key: TimerKey, fx: &mut Effects<Self::Msg, Self::Resp>) {
        if let Some(rec) = self.recovering.as_ref() {
            if rec.ph.uid() != key.0 {
                return;
            }
            let (uid, missing) = (rec.ph.uid(), rec.ph.missing());
            self.rtx
                .fire(key.0, &missing, RegisterMsg::Query { uid }, fx);
            return;
        }
        let Some(pending) = self.pending.as_ref() else {
            return;
        };
        if pending.phase().uid() != key.0 {
            return;
        }
        let mut missing = pending.phase().missing();
        if matches!(pending, Pending::RelayRead { .. }) {
            // A relay reader can be stuck on replies *or* on forwards for
            // its own server round; re-query both sets. The empty-seeded
            // reply tracker lists `me` as missing — never send to self.
            if let Some(rph) = self.relays.get(&(self.cfg.me, key.0)) {
                for p in rph.missing() {
                    if !missing.contains(&p) {
                        missing.push(p);
                    }
                }
                missing.sort();
            }
            missing.retain(|&p| p != self.cfg.me);
        }
        if let Some(msg) = self.phase_message() {
            self.rtx.fire(key.0, &missing, msg, fx);
        }
    }

    fn on_restart(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        // Volatile state is wiped; the replica pair and uid counter model
        // stable storage (see crate::swmr module docs). A writer needs no
        // extra sequence catch-up here: every write starts with its own
        // query phase and picks a tag above everything a read quorum knows.
        self.pending = None;
        self.queue.clear();
        self.rtx.reset();
        // Relay bookkeeping is volatile too (see crate::swmr::on_restart).
        self.relays.clear();
        self.relay_done.clear();
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        let (best_tag, best_value) = self.replica.snapshot();
        if self.cfg.quorum.is_read_quorum(ph.responders()) {
            return; // Single-node cluster: nothing to catch up from.
        }
        self.recovering = Some(Recovery {
            ph,
            best_tag,
            best_value,
        });
        self.broadcast(RegisterMsg::Query { uid }, fx);
        self.arm_timer(uid, fx);
    }
}

impl<V: Clone + std::fmt::Debug + Send + 'static> ReadPathStats for MwmrNode<V> {
    fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    fn write_backs(&self) -> u64 {
        self.write_backs
    }

    fn relay_reads(&self) -> u64 {
        self.relay_reads
    }

    fn sc_reads(&self) -> u64 {
        self.sc_reads
    }

    fn regular_reads(&self) -> u64 {
        self.regular_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MiniNet;

    fn cluster(n: usize) -> MiniNet<MwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| MwmrNode::new(MwmrConfig::new(n, ProcessId(i)), 0u32))
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn any_node_can_write() {
        let mut net = cluster(3);
        for writer in 0..3 {
            net.invoke(writer, RegisterOp::Write(writer as u32 + 10));
            net.run_to_quiescence();
        }
        let resp = net.take_responses();
        assert!(resp.iter().all(|(_, r)| *r == RegisterResp::WriteOk));
        net.invoke(0, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(12));
    }

    #[test]
    fn sequential_writes_get_increasing_tags() {
        let mut net = cluster(3);
        net.invoke(1, RegisterOp::Write(1));
        net.run_to_quiescence();
        let t1 = net.node(1).replica_state().0;
        net.invoke(2, RegisterOp::Write(2));
        net.run_to_quiescence();
        let t2 = net.node(2).replica_state().0;
        assert!(t2 > t1, "{t2:?} must exceed {t1:?}");
        assert_eq!(t1, Tag::new(1, ProcessId(1)));
        assert_eq!(t2, Tag::new(2, ProcessId(2)));
    }

    #[test]
    fn concurrent_writers_produce_distinct_tags() {
        let mut net = cluster(5);
        // Both writers pass their query phase before either update lands.
        net.invoke(1, RegisterOp::Write(100));
        net.invoke(2, RegisterOp::Write(200));
        net.run_to_quiescence();
        let resp = net.take_responses();
        assert_eq!(resp.len(), 2);
        // Tags differ at least in the writer component; all replicas agree
        // on the winner.
        let winner = net.node(0).replica_state();
        for i in 1..5 {
            assert_eq!(net.node(i).replica_state(), winner);
        }
        assert!(winner.0.writer == ProcessId(1) || winner.0.writer == ProcessId(2));
    }

    #[test]
    fn write_costs_two_round_trips() {
        let mut net = cluster(5);
        net.invoke(3, RegisterOp::Write(7));
        net.run_to_quiescence();
        // query + replies + update + acks = 4(n-1).
        assert_eq!(net.messages_sent(), 4 * (5 - 1));
    }

    #[test]
    fn read_costs_two_round_trips() {
        let mut net = cluster(5);
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.messages_sent(), 4 * (5 - 1));
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(0));
    }

    #[test]
    fn sequential_read_is_local_and_free() {
        let mut net = cluster(5);
        net.invoke(1, RegisterOp::Write(7));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        net.invoke(3, RegisterOp::ReadAt(Consistency::Sequential));
        net.run_to_quiescence();
        assert_eq!(net.messages_sent() - before, 0, "SC read sends nothing");
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(7));
        assert_eq!(net.node(3).sc_reads(), 1);
        assert_eq!(net.node(3).write_backs(), 0);
    }

    #[test]
    fn regular_tier_read_skips_write_back() {
        let mut net = cluster(5);
        net.invoke(2, RegisterOp::Write(4));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        net.invoke(3, RegisterOp::ReadAt(Consistency::Regular));
        net.run_to_quiescence();
        // Query + replies only = 2(n-1); no write-back round.
        assert_eq!(net.messages_sent() - before, 2 * (5 - 1));
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(4));
        assert_eq!(net.node(3).regular_reads(), 1);
        assert_eq!(net.node(3).write_backs(), 0);
    }

    #[test]
    fn tolerates_minority_crashes() {
        let mut net = cluster(5);
        net.crash(0);
        net.crash(4);
        net.invoke(2, RegisterOp::Write(9));
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
        net.invoke(1, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(9));
    }

    #[test]
    fn blocks_under_majority_crashes() {
        let mut net = cluster(4);
        net.crash(2);
        net.crash(3);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        assert!(net.take_responses().is_empty());
        assert!(net.node(0).is_busy());
    }

    #[test]
    fn writer_query_prevents_lost_update() {
        // Writer 2 must observe writer 1's completed write in its query
        // phase and pick a strictly larger tag.
        let mut net = cluster(3);
        net.invoke(1, RegisterOp::Write(100));
        net.run_to_quiescence();
        net.invoke(2, RegisterOp::Write(200));
        net.run_to_quiescence();
        net.take_responses();
        net.invoke(0, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(200));
    }

    #[test]
    fn stale_messages_ignored() {
        let mut node = MwmrNode::new(MwmrConfig::new(3, ProcessId(0)), 0u32);
        let mut fx = Effects::new();
        node.on_message(
            ProcessId(1),
            RegisterMsg::QueryReply {
                uid: 42,
                label: Tag::new(9, ProcessId(1)),
                value: 5,
            },
            &mut fx,
        );
        node.on_message(ProcessId(1), RegisterMsg::UpdateAck { uid: 42 }, &mut fx);
        assert!(fx.is_empty());
        assert_eq!(node.replica_state().0, Tag::initial());
    }

    #[test]
    fn restart_catches_up_and_keeps_tags_monotone() {
        let mut net = cluster(3);
        net.invoke(1, RegisterOp::Write(100));
        net.run_to_quiescence();
        net.crash(2);
        net.invoke(1, RegisterOp::Write(200));
        net.run_to_quiescence();
        net.take_responses();
        net.restart(2);
        assert!(net.node(2).is_recovering());
        net.run_to_quiescence();
        assert!(!net.node(2).is_recovering());
        assert_eq!(net.node(2).replica_state().1, 200, "caught up");
        // A post-restart write from the rejoined node dominates.
        net.invoke(2, RegisterOp::Write(300));
        net.run_to_quiescence();
        net.invoke(0, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses().last().unwrap().1,
            RegisterResp::ReadOk(300)
        );
    }

    fn fast_cluster(n: usize) -> MiniNet<MwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| {
                let cfg = MwmrConfig::new(n, ProcessId(i)).with_read_mode(ReadMode::FastUnanimous);
                MwmrNode::new(cfg, 0u32)
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn uncontended_fast_read_costs_one_round_trip() {
        let mut net = fast_cluster(5);
        net.invoke(1, RegisterOp::Write(8));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        // Unanimous quorum: query + replies only = 2(n-1).
        assert_eq!(net.messages_sent() - before, 2 * (5 - 1));
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(8));
        assert_eq!(net.node(3).fast_reads(), 1);
        assert_eq!(net.node(3).write_backs(), 0);
        // Writes keep their two phases even with the flag on.
        let before = net.messages_sent();
        net.invoke(2, RegisterOp::Write(9));
        net.run_to_quiescence();
        assert_eq!(net.messages_sent() - before, 4 * (5 - 1));
    }

    #[test]
    fn disagreeing_quorum_forces_mwmr_slow_path() {
        let mut net = fast_cluster(5);
        // Confine the write's update phase to {1,2,3} (writer 1 plus two).
        net.set_drop_filter(|_, to, m: &MwmrMsg<u32>| {
            matches!(m, RegisterMsg::Update { .. }) && to.index() != 2 && to.index() != 3
        });
        net.invoke(1, RegisterOp::Write(5));
        net.run_to_quiescence();
        net.take_responses();
        net.clear_drop_filter();
        // Stale reader 0's quorum mixes fresh and stale tags.
        net.invoke(0, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(5));
        assert_eq!(net.node(0).fast_reads(), 0, "disagreement must not elide");
        assert_eq!(net.node(0).write_backs(), 1);
    }

    fn relay_cluster(n: usize) -> MiniNet<MwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| {
                MwmrNode::new(
                    MwmrConfig::new(n, ProcessId(i)).with_read_mode(ReadMode::Relay),
                    0u32,
                )
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn relay_read_returns_latest_write_across_writers() {
        let mut net = relay_cluster(5);
        net.invoke(1, RegisterOp::Write(10));
        net.run_to_quiescence();
        net.invoke(2, RegisterOp::Write(20));
        net.run_to_quiescence();
        net.take_responses();
        net.invoke(4, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(2), RegisterResp::ReadOk(20))]
        );
        assert_eq!(net.node(4).relay_reads(), 1);
        assert_eq!(net.node(4).write_backs(), 0);
    }

    #[test]
    fn relay_read_costs_n_squared_minus_one_messages() {
        let mut net = relay_cluster(5);
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        // query (n-1) + forwards (n-1)² + replies (n-1) = n² - 1.
        assert_eq!(net.messages_sent(), 5 * 5 - 1);
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(0));
    }

    #[test]
    fn relay_read_spreads_a_partially_propagated_write() {
        let mut net = relay_cluster(5);
        // Writer 1's update reaches only {1,2} plus its query round;
        // replicas 3 and 4 stay stale.
        net.set_drop_filter(|_, to, m: &MwmrMsg<u32>| {
            matches!(m, RegisterMsg::Update { .. }) && to.index() >= 3
        });
        net.invoke(1, RegisterOp::Write(7));
        net.run_to_quiescence();
        net.take_responses();
        net.clear_drop_filter();
        // A stale node's relay read must still return the completed write.
        net.invoke(4, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(7));
    }

    #[test]
    fn relay_read_completes_with_minority_crashed() {
        let mut net = relay_cluster(5);
        net.invoke(1, RegisterOp::Write(3));
        net.run_to_quiescence();
        net.take_responses();
        net.crash(0);
        net.crash(2);
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(3));
    }

    #[test]
    fn retransmission_recovers_lost_update_phase() {
        let nodes: Vec<MwmrNode<u32>> = (0..3)
            .map(|i| MwmrNode::new(MwmrConfig::new(3, ProcessId(i)).with_retransmit(500), 0))
            .collect();
        let mut net = MiniNet::new(nodes);
        // Lose each (from, to, is_update) combination once.
        net.set_drop_filter({
            let mut seen = std::collections::HashSet::new();
            move |from, to, m: &MwmrMsg<u32>| {
                matches!(m, RegisterMsg::Update { .. }) && seen.insert((from, to))
            }
        });
        net.invoke(0, RegisterOp::Write(77));
        net.run_to_quiescence();
        assert!(net.take_responses().is_empty());
        net.fire_timers(0);
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
    }
}
