//! A compact set of [`ProcessId`]s.
//!
//! Quorum membership tests are the hottest path of the emulation: every
//! incoming acknowledgement asks "does the set of responders form a quorum
//! yet?". [`ProcSet`] is a fixed-capacity bit set sized at construction for
//! the cluster's `n`, so insertions and membership tests are O(1) and quorum
//! cardinality checks are a handful of `popcount`s.

use crate::types::ProcessId;
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of processor ids drawn from `0..capacity`.
///
/// # Examples
///
/// ```
/// use abd_core::procset::ProcSet;
/// use abd_core::types::ProcessId;
///
/// let mut s = ProcSet::new(5);
/// s.insert(ProcessId(0));
/// s.insert(ProcessId(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId(3)));
/// assert!(!s.contains(ProcessId(1)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![ProcessId(0), ProcessId(3)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ProcSet {
    words: Vec<u64>,
    capacity: usize,
}

impl ProcSet {
    /// Creates an empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        let nwords = capacity.div_ceil(WORD_BITS).max(1);
        ProcSet {
            words: vec![0; nwords],
            capacity,
        }
    }

    /// Creates a set containing every id in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = ProcSet::new(capacity);
        for i in 0..capacity {
            s.insert(ProcessId(i));
        }
        s
    }

    /// Creates a set from an iterator of ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= capacity`.
    pub fn from_iter_with_capacity<I: IntoIterator<Item = ProcessId>>(
        capacity: usize,
        iter: I,
    ) -> Self {
        let mut s = ProcSet::new(capacity);
        for p in iter {
            s.insert(p);
        }
        s
    }

    /// The number of ids this set can hold (`n` of the cluster).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds `p` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `p.index() >= capacity`.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        assert!(
            p.index() < self.capacity,
            "{p} out of range for capacity {}",
            self.capacity
        );
        let (w, b) = (p.index() / WORD_BITS, p.index() % WORD_BITS);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `p` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        if p.index() >= self.capacity {
            return false;
        }
        let (w, b) = (p.index() / WORD_BITS, p.index() % WORD_BITS);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Tests membership of `p`.
    pub fn contains(&self, p: ProcessId) -> bool {
        if p.index() >= self.capacity {
            return false;
        }
        let (w, b) = (p.index() / WORD_BITS, p.index() % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all ids.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Whether every element of `other` is in `self`.
    pub fn is_superset(&self, other: &ProcSet) -> bool {
        other.words.iter().enumerate().all(|(i, &w)| {
            let mine = self.words.get(i).copied().unwrap_or(0);
            w & !mine == 0
        })
    }

    /// Whether the two sets share at least one id.
    pub fn intersects(&self, other: &ProcSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, next: 0 }
    }

    /// The ids of `0..capacity` *not* in the set, ascending.
    pub fn complement(&self) -> Vec<ProcessId> {
        (0..self.capacity)
            .map(ProcessId)
            .filter(|&p| !self.contains(p))
            .collect()
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`ProcSet`], produced by [`ProcSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a ProcSet,
    next: usize,
}

impl Iterator for Iter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        while self.next < self.set.capacity {
            let p = ProcessId(self.next);
            self.next += 1;
            if self.set.contains(p) {
                return Some(p);
            }
        }
        None
    }
}

impl<'a> IntoIterator for &'a ProcSet {
    type Item = ProcessId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<ProcessId> for ProcSet {
    fn extend<T: IntoIterator<Item = ProcessId>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = ProcSet::new(70);
        assert!(s.is_empty());
        assert!(s.insert(ProcessId(0)));
        assert!(s.insert(ProcessId(69)));
        assert!(!s.insert(ProcessId(69)), "double insert reports false");
        assert_eq!(s.len(), 2);
        assert!(s.contains(ProcessId(69)));
        assert!(s.remove(ProcessId(69)));
        assert!(!s.remove(ProcessId(69)));
        assert!(!s.contains(ProcessId(69)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        ProcSet::new(4).insert(ProcessId(4));
    }

    #[test]
    fn full_and_complement() {
        let s = ProcSet::full(5);
        assert_eq!(s.len(), 5);
        assert!(s.complement().is_empty());
        let mut t = ProcSet::new(5);
        t.insert(ProcessId(1));
        assert_eq!(
            t.complement(),
            vec![ProcessId(0), ProcessId(2), ProcessId(3), ProcessId(4)]
        );
    }

    #[test]
    fn superset_and_intersects() {
        let a = ProcSet::from_iter_with_capacity(10, [ProcessId(1), ProcessId(2), ProcessId(3)]);
        let b = ProcSet::from_iter_with_capacity(10, [ProcessId(2), ProcessId(3)]);
        let c = ProcSet::from_iter_with_capacity(10, [ProcessId(7)]);
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.is_superset(&ProcSet::new(10)), "superset of empty");
    }

    #[test]
    fn iter_ascending() {
        let s =
            ProcSet::from_iter_with_capacity(130, [ProcessId(128), ProcessId(0), ProcessId(64)]);
        let v: Vec<_> = s.iter().map(ProcessId::index).collect();
        assert_eq!(v, vec![0, 64, 128]);
    }

    #[test]
    fn debug_formats_as_set() {
        let s = ProcSet::from_iter_with_capacity(4, [ProcessId(1)]);
        assert_eq!(format!("{s:?}"), "{ProcessId(1)}");
        assert_eq!(format!("{:?}", ProcSet::new(3)), "{}");
    }

    #[test]
    fn clear_empties() {
        let mut s = ProcSet::full(9);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    proptest! {
        #[test]
        fn matches_btreeset_semantics(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..200)) {
            let mut s = ProcSet::new(64);
            let mut model = std::collections::BTreeSet::new();
            for (i, ins) in ops {
                let p = ProcessId(i);
                if ins {
                    prop_assert_eq!(s.insert(p), model.insert(p));
                } else {
                    prop_assert_eq!(s.remove(p), model.remove(&p));
                }
                prop_assert_eq!(s.len(), model.len());
                prop_assert_eq!(s.contains(p), model.contains(&p));
            }
            let got: Vec<_> = s.iter().collect();
            let want: Vec<_> = model.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }
}
