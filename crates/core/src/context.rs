//! The sans-io protocol interface.
//!
//! Protocol state machines in this crate perform no I/O and read no clocks.
//! A *host* — the deterministic simulator (`abd-simnet`) or the thread
//! runtime (`abd-runtime`) — delivers inputs by calling the [`Protocol`]
//! callbacks and carries out the outputs the callback recorded in an
//! [`Effects`] buffer: messages to send, timers to (re)arm or cancel, and
//! operation responses to hand back to the invoking client.
//!
//! This is what lets one implementation of the ABD state machine run
//! unmodified under an adversarial discrete-event scheduler *and* on real
//! threads, which is the modularity claim the paper itself makes for the
//! emulation.

use crate::types::{Nanos, OpId, ProcessId};

/// Key naming a timer owned by a protocol instance.
///
/// Keys are chosen by the protocol (typically the phase id they protect);
/// setting a timer with an existing key re-arms it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerKey(pub u64);

/// A timer instruction recorded by a protocol callback.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TimerCmd {
    /// Arm (or re-arm) the timer `key` to fire `after` nanoseconds from now.
    Set {
        /// Protocol-chosen timer name.
        key: TimerKey,
        /// Delay until the timer fires.
        after: Nanos,
    },
    /// Cancel the timer `key` if it is armed.
    Cancel {
        /// Protocol-chosen timer name.
        key: TimerKey,
    },
}

/// Output buffer filled by protocol callbacks and drained by the host.
///
/// # Examples
///
/// ```
/// use abd_core::context::Effects;
/// use abd_core::types::{OpId, ProcessId};
///
/// let mut fx: Effects<&'static str, u32> = Effects::new();
/// fx.send(ProcessId(1), "hello");
/// fx.respond(OpId(7), 42);
/// assert_eq!(fx.sends.len(), 1);
/// assert_eq!(fx.responses, vec![(OpId(7), 42)]);
/// ```
#[derive(Clone, Debug)]
pub struct Effects<M, R> {
    /// Point-to-point messages to transmit, in emission order.
    pub sends: Vec<(ProcessId, M)>,
    /// Timer instructions, applied in order.
    pub timers: Vec<TimerCmd>,
    /// Completed operations: `(op, response)` pairs.
    pub responses: Vec<(OpId, R)>,
}

impl<M, R> Effects<M, R> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            timers: Vec::new(),
            responses: Vec::new(),
        }
    }

    /// Queues a message `m` for processor `to`.
    pub fn send(&mut self, to: ProcessId, m: M) {
        self.sends.push((to, m));
    }

    /// Queues the same message for every processor in `to`, cloning it.
    pub fn send_each<I: IntoIterator<Item = ProcessId>>(&mut self, to: I, m: M)
    where
        M: Clone,
    {
        for p in to {
            self.sends.push((p, m.clone()));
        }
    }

    /// Arms (or re-arms) timer `key` to fire after `after` nanoseconds.
    pub fn set_timer(&mut self, key: TimerKey, after: Nanos) {
        self.timers.push(TimerCmd::Set { key, after });
    }

    /// Cancels timer `key`.
    pub fn cancel_timer(&mut self, key: TimerKey) {
        self.timers.push(TimerCmd::Cancel { key });
    }

    /// Records the completion of operation `op` with response `r`.
    pub fn respond(&mut self, op: OpId, r: R) {
        self.responses.push((op, r));
    }

    /// Whether no effect of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.responses.is_empty()
    }

    /// Moves all effects out of `self`, leaving it empty.
    pub fn take(&mut self) -> Effects<M, R> {
        Effects {
            sends: std::mem::take(&mut self.sends),
            timers: std::mem::take(&mut self.timers),
            responses: std::mem::take(&mut self.responses),
        }
    }
}

impl<M, R> Default for Effects<M, R> {
    fn default() -> Self {
        Effects::new()
    }
}

/// A deterministic, event-driven protocol node.
///
/// Implementations must be *pure state machines*: every transition is a
/// deterministic function of the current state and the input event, with all
/// outputs recorded in the supplied [`Effects`]. Hosts guarantee that
/// callbacks are never invoked concurrently for the same node.
///
/// Sends to *self* are allowed and hosts must loop them back (subject to the
/// same delivery semantics as any other message), but protocols in this
/// crate apply local state changes directly instead, mirroring the paper
/// where a processor counts itself in the majority it awaits.
pub trait Protocol {
    /// Wire message type exchanged between nodes of this protocol.
    type Msg: Clone + std::fmt::Debug + Send + 'static;
    /// Client operation type accepted by [`Protocol::on_invoke`].
    type Op: std::fmt::Debug + Send + 'static;
    /// Response type produced for completed operations.
    type Resp: std::fmt::Debug + Send + 'static;

    /// The identity of this node within the cluster.
    fn id(&self) -> ProcessId;

    /// Called once before any other callback, when the node boots.
    fn on_start(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        let _ = fx;
    }

    /// A client invoked operation `input`, to be completed later via
    /// [`Effects::respond`] with the same `op` id.
    ///
    /// Nodes accept at most one outstanding operation per invocation stream;
    /// implementations in this crate queue additional invocations and serve
    /// them in FIFO order (a processor of the paper is a sequential client).
    fn on_invoke(&mut self, op: OpId, input: Self::Op, fx: &mut Effects<Self::Msg, Self::Resp>);

    /// A message `msg` from processor `from` was delivered to this node.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    );

    /// Timer `key`, previously armed through [`Effects::set_timer`], fired.
    fn on_timer(&mut self, key: TimerKey, fx: &mut Effects<Self::Msg, Self::Resp>) {
        let _ = (key, fx);
    }

    /// The node crashed and has been rebooted by its host.
    ///
    /// Called in place of [`Protocol::on_start`] when a crashed node
    /// rejoins. By the time this runs the host has already discarded every
    /// armed timer; in-flight operations were lost with the crash (their
    /// clients see them as aborted). Implementations must drop volatile
    /// per-operation state and may emit messages to catch their replica up
    /// (the protocols in this crate run their own query phase against a
    /// read quorum before serving new invocations). State modelling stable
    /// storage — the replica's `(label, value)` pair, the writer's sequence
    /// number, the phase-uid counter — survives; see the crate docs for why
    /// full amnesia would forfeit atomicity.
    fn on_restart(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        let _ = fx;
    }
}

/// Read-path counters exposed by protocols that support fast-path reads.
///
/// Implementors count, per node, how many of the reads *they issued*
/// completed on the one-round fast path (write-back elided) versus how many
/// ran the full two-phase protocol. Hosts can sum these across nodes — see
/// `abd-simnet`'s `Sim::read_path_metrics`.
pub trait ReadPathStats {
    /// Reads issued by this node that skipped the write-back phase.
    fn fast_reads(&self) -> u64;
    /// Reads issued by this node that executed the write-back phase.
    fn write_backs(&self) -> u64;
    /// Reads issued by this node that completed via server-to-server relay
    /// (`ReadMode::Relay`); `0` for protocols without a relay path.
    fn relay_reads(&self) -> u64 {
        0
    }
    /// Reads issued by this node that completed at
    /// `Consistency::Sequential` — served from the local replica with no
    /// network round; `0` for protocols without consistency tiers.
    fn sc_reads(&self) -> u64 {
        0
    }
    /// Reads issued by this node that completed at `Consistency::Regular` —
    /// a query round with the write-back elided; `0` for protocols without
    /// consistency tiers.
    fn regular_reads(&self) -> u64 {
        0
    }
    /// Sync-protocol messages (bulk state transfer and Merkle walk) sent
    /// by this node; `0` for protocols without a recovery sync path.
    fn recovery_msgs(&self) -> u64 {
        0
    }
    /// Estimated payload bytes of the sync messages sent by this node;
    /// `0` for protocols without a recovery sync path.
    fn recovery_bytes(&self) -> u64 {
        0
    }
    /// `(key, tag, value)` entries shipped by this node in sync replies;
    /// `0` for protocols without a recovery sync path.
    fn sync_entries_sent(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_collects_in_order() {
        let mut fx: Effects<u8, ()> = Effects::new();
        assert!(fx.is_empty());
        fx.send(ProcessId(0), 1);
        fx.send(ProcessId(2), 2);
        fx.set_timer(TimerKey(9), 100);
        fx.cancel_timer(TimerKey(9));
        fx.respond(OpId(1), ());
        assert_eq!(fx.sends, vec![(ProcessId(0), 1), (ProcessId(2), 2)]);
        assert_eq!(
            fx.timers,
            vec![
                TimerCmd::Set {
                    key: TimerKey(9),
                    after: 100
                },
                TimerCmd::Cancel { key: TimerKey(9) }
            ]
        );
        assert!(!fx.is_empty());
    }

    #[test]
    fn send_each_clones_to_every_target() {
        let mut fx: Effects<&str, ()> = Effects::new();
        fx.send_each([ProcessId(0), ProcessId(3)], "m");
        assert_eq!(fx.sends, vec![(ProcessId(0), "m"), (ProcessId(3), "m")]);
    }

    #[test]
    fn take_drains() {
        let mut fx: Effects<u8, u8> = Effects::new();
        fx.send(ProcessId(1), 7);
        fx.respond(OpId(0), 9);
        let taken = fx.take();
        assert!(fx.is_empty());
        assert_eq!(taken.sends.len(), 1);
        assert_eq!(taken.responses.len(), 1);
    }

    #[test]
    fn default_is_empty() {
        let fx: Effects<u8, u8> = Effects::default();
        assert!(fx.is_empty());
    }
}
