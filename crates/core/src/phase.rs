//! Quorum-gathering phases.
//!
//! Every operation of the emulation is one or two *phases*: broadcast a
//! request, then wait until the set of responders (always including the
//! issuing processor itself) contains a quorum. [`PhaseTracker`] owns the
//! bookkeeping common to all of them — the unique phase id, the responder
//! set, and the retransmission target list — so the protocol state machines
//! only encode *what* each phase means.

use crate::procset::ProcSet;
use crate::types::ProcessId;

/// Tracks one in-flight phase: who has responded, and which phase id the
/// responses must echo.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhaseTracker {
    uid: u64,
    responders: ProcSet,
}

impl PhaseTracker {
    /// Starts a phase with id `uid` for a cluster of `n` processors,
    /// counting the issuing processor `me` as having already responded
    /// (a processor never messages itself).
    pub fn new(uid: u64, n: usize, me: ProcessId) -> Self {
        let mut responders = ProcSet::new(n);
        responders.insert(me);
        PhaseTracker { uid, responders }
    }

    /// The phase id replies must carry.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Records a response from `from` if `uid` matches this phase.
    /// Returns `true` if the response was accepted (right phase, first time).
    pub fn record(&mut self, from: ProcessId, uid: u64) -> bool {
        uid == self.uid && self.responders.insert(from)
    }

    /// The set of processors that have responded (including the issuer).
    pub fn responders(&self) -> &ProcSet {
        &self.responders
    }

    /// Processors that have **not** responded yet — the retransmission
    /// targets when the phase timer fires.
    pub fn missing(&self) -> Vec<ProcessId> {
        self.responders.complement()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_self_and_filters_stale_uids() {
        let mut ph = PhaseTracker::new(7, 5, ProcessId(2));
        assert_eq!(ph.uid(), 7);
        assert_eq!(ph.responders().len(), 1);
        assert!(ph.responders().contains(ProcessId(2)));

        assert!(ph.record(ProcessId(0), 7));
        assert!(!ph.record(ProcessId(0), 7), "duplicate response ignored");
        assert!(!ph.record(ProcessId(1), 6), "stale phase id ignored");
        assert_eq!(ph.responders().len(), 2);
    }

    #[test]
    fn missing_lists_non_responders() {
        let mut ph = PhaseTracker::new(1, 4, ProcessId(0));
        ph.record(ProcessId(3), 1);
        assert_eq!(ph.missing(), vec![ProcessId(1), ProcessId(2)]);
    }
}
