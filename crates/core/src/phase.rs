//! Quorum-gathering phases.
//!
//! Every operation of the emulation is one or two *phases*: broadcast a
//! request, then wait until the set of responders (always including the
//! issuing processor itself) contains a quorum. [`PhaseTracker`] owns the
//! bookkeeping common to all of them — the unique phase id, the responder
//! set, and the retransmission target list — so the protocol state machines
//! only encode *what* each phase means.

use crate::procset::ProcSet;
use crate::types::ProcessId;

/// Tracks one in-flight phase: who has responded, and which phase id the
/// responses must echo.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PhaseTracker {
    uid: u64,
    responders: ProcSet,
}

impl PhaseTracker {
    /// Starts a phase with id `uid` for a cluster of `n` processors,
    /// counting the issuing processor `me` as having already responded
    /// (a processor never messages itself).
    pub fn new(uid: u64, n: usize, me: ProcessId) -> Self {
        let mut responders = ProcSet::new(n);
        responders.insert(me);
        PhaseTracker { uid, responders }
    }

    /// Starts a phase with **no** responder pre-seeded. Relay reads use
    /// this for the reply-collection phase: the issuer's own reply only
    /// counts once its own server-side relay round has completed, so even
    /// `me` must be recorded explicitly.
    pub fn new_empty(uid: u64, n: usize) -> Self {
        PhaseTracker {
            uid,
            responders: ProcSet::new(n),
        }
    }

    /// The phase id replies must carry.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Records a response from `from` if `uid` matches this phase.
    /// Returns `true` if the response was accepted (right phase, first time).
    pub fn record(&mut self, from: ProcessId, uid: u64) -> bool {
        uid == self.uid && self.responders.insert(from)
    }

    /// The set of processors that have responded (including the issuer).
    pub fn responders(&self) -> &ProcSet {
        &self.responders
    }

    /// Processors that have **not** responded yet — the retransmission
    /// targets when the phase timer fires.
    pub fn missing(&self) -> Vec<ProcessId> {
        self.responders.complement()
    }
}

/// Folds the `(label, value)` replies of a read query phase, tracking both
/// the maximum label seen **and whether every reply agreed on it**.
///
/// The agreement bit is what the fast-path read needs: if all responders
/// (seeded with the issuer's own replica) reported one identical maximum
/// label, the value is already as replicated as a completed write-back
/// would leave it. The final elision decision additionally requires the
/// responder set to be a write quorum — pass
/// [`unanimous`](TagCensus::unanimous) to
/// [`fast_read_allowed`](crate::quorum::fast_read_allowed) rather than
/// branching on it directly (the `abd-lint` `fast-path-helper` rule
/// enforces this).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TagCensus<L, V> {
    max_label: L,
    value: V,
    unanimous: bool,
}

impl<L: Ord, V> TagCensus<L, V> {
    /// Starts a census from the issuer's own replica snapshot.
    pub fn new(label: L, value: V) -> Self {
        TagCensus {
            max_label: label,
            value,
            unanimous: true,
        }
    }

    /// Folds in one reply. Any reply that differs from the current maximum
    /// — above *or* below it — destroys unanimity for good.
    pub fn observe(&mut self, label: L, value: V) {
        match label.cmp(&self.max_label) {
            std::cmp::Ordering::Greater => {
                self.unanimous = false;
                self.max_label = label;
                self.value = value;
            }
            std::cmp::Ordering::Less => self.unanimous = false,
            std::cmp::Ordering::Equal => {}
        }
    }

    /// The maximum label observed so far.
    pub fn max_label(&self) -> &L {
        &self.max_label
    }

    /// `true` while every observation matched the running maximum.
    pub fn unanimous(&self) -> bool {
        self.unanimous
    }

    /// Consumes the census, yielding the `(max label, value)` pair.
    pub fn into_best(self) -> (L, V) {
        (self.max_label, self.value)
    }
}

/// Folds the `(label, value)` replies of a relay read, keeping the pair
/// with the **minimum** label.
///
/// Each relay reply carries a label every *completed* write's label is ≤ of
/// (the replier adopted the maximum of a read quorum of forwards before
/// replying), so the minimum over a write quorum of replies is still fresh
/// enough to return — and unlike the maximum, it is held by *every* replier
/// in that write quorum, which is what lets the reader skip the write-back:
/// any later read's forwards intersect the quorum and can only report
/// labels ≥ it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelayCensus<L, V> {
    min: Option<(L, V)>,
}

impl<L: Ord, V> RelayCensus<L, V> {
    /// Starts an empty census (the issuer's replica does not count until
    /// its own relay round completes).
    pub fn new() -> Self {
        RelayCensus { min: None }
    }

    /// Folds in one reply, keeping the smaller label (first seen wins ties).
    pub fn observe(&mut self, label: L, value: V) {
        match &self.min {
            Some((cur, _)) if *cur <= label => {}
            _ => self.min = Some((label, value)),
        }
    }

    /// Consumes the census, yielding the minimum `(label, value)` pair, or
    /// `None` if nothing was observed.
    pub fn into_min(self) -> Option<(L, V)> {
        self.min
    }
}

impl<L: Ord, V> Default for RelayCensus<L, V> {
    fn default() -> Self {
        RelayCensus::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_self_and_filters_stale_uids() {
        let mut ph = PhaseTracker::new(7, 5, ProcessId(2));
        assert_eq!(ph.uid(), 7);
        assert_eq!(ph.responders().len(), 1);
        assert!(ph.responders().contains(ProcessId(2)));

        assert!(ph.record(ProcessId(0), 7));
        assert!(!ph.record(ProcessId(0), 7), "duplicate response ignored");
        assert!(!ph.record(ProcessId(1), 6), "stale phase id ignored");
        assert_eq!(ph.responders().len(), 2);
    }

    #[test]
    fn empty_tracker_counts_nobody_until_recorded() {
        let mut ph = PhaseTracker::new_empty(3, 3);
        assert_eq!(ph.responders().len(), 0);
        assert_eq!(ph.missing().len(), 3, "even the issuer is missing");
        assert!(ph.record(ProcessId(1), 3));
        assert!(!ph.record(ProcessId(1), 3));
        assert_eq!(ph.responders().len(), 1);
    }

    #[test]
    fn relay_census_keeps_the_minimum_pair() {
        let mut c = RelayCensus::new();
        assert_eq!(c.clone().into_min(), None);
        c.observe(5u64, "e");
        c.observe(3, "c");
        c.observe(4, "d");
        c.observe(3, "c2"); // ties keep the first pair seen
        assert_eq!(c.into_min(), Some((3, "c")));
    }

    #[test]
    fn missing_lists_non_responders() {
        let mut ph = PhaseTracker::new(1, 4, ProcessId(0));
        ph.record(ProcessId(3), 1);
        assert_eq!(ph.missing(), vec![ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn census_stays_unanimous_on_identical_labels() {
        let mut c = TagCensus::new(4u64, "v");
        c.observe(4, "v");
        c.observe(4, "v");
        assert!(c.unanimous());
        assert_eq!(*c.max_label(), 4);
        assert_eq!(c.into_best(), (4, "v"));
    }

    #[test]
    fn census_loses_unanimity_on_any_mismatch() {
        // A lower label breaks agreement without changing the max.
        let mut low = TagCensus::new(4u64, 40);
        low.observe(3, 30);
        assert!(!low.unanimous());
        assert_eq!(low.into_best(), (4, 40));

        // A higher label breaks agreement *and* updates the max; later
        // matching replies never restore unanimity.
        let mut high = TagCensus::new(4u64, 40);
        high.observe(5, 50);
        high.observe(5, 50);
        assert!(!high.unanimous());
        assert_eq!(high.into_best(), (5, 50));
    }
}
