//! Quorum systems.
//!
//! The paper's emulation waits for *majorities*: any two majorities of the
//! `n` processors intersect, so a reader's query quorum always contains a
//! processor that saw the latest completed write. The property actually used
//! by the proof is only that **every read quorum intersects every write
//! quorum** (and, for the multi-writer protocol, that write quorums pairwise
//! intersect). Phrasing the construction over an abstract [`QuorumSystem`]
//! was the key step of the follow-up literature (Malkhi–Reiter Byzantine
//! quorums, RAMBO, Dynamo-style `R + W > N` stores), and this module makes
//! that generalization explicit:
//!
//! * [`Majority`] — the paper's original choice, `⌊n/2⌋ + 1` processors;
//! * [`Threshold`] — Dynamo-style `R`/`W` counts with `R + W > N`;
//! * [`Weighted`] — Gifford-style weighted voting;
//! * [`Grid`] — `O(√n)`-sized quorums on a rows × columns grid.
//!
//! Experiment **F4** sweeps these families (see `EXPERIMENTS.md`).

use crate::procset::ProcSet;
use crate::types::ProcessId;
use std::fmt;

/// The majority quorum cardinality for `n` processors: `⌊n/2⌋ + 1`.
///
/// This function is the **one place** in the workspace where the paper's
/// majority arithmetic lives — every protocol and configuration that needs
/// a crash-tolerant quorum size must call it (or go through [`Majority`])
/// rather than re-deriving `n / 2 + 1` locally, so the `abd-lint`
/// `raw-quorum-arith` rule can keep ad-hoc (and historically off-by-one)
/// variants out of the codebase.
///
/// # Panics
///
/// Panics if `n == 0`: there is no quorum system over zero processors.
///
/// # Examples
///
/// ```
/// use abd_core::quorum::majority_threshold;
/// assert_eq!(majority_threshold(1), 1);
/// assert_eq!(majority_threshold(4), 3);
/// assert_eq!(majority_threshold(5), 3);
/// ```
pub fn majority_threshold(n: usize) -> usize {
    assert!(n > 0, "no quorum system over zero processors");
    n / 2 + 1
}

/// The masking quorum cardinality for `n` processors of which up to `b` may
/// be Byzantine: `⌈(n + 2b + 1) / 2⌉`.
///
/// Any two such quorums intersect in at least `2b + 1` processors, so their
/// intersection still holds a majority of correct ones — the bound behind
/// the Byzantine-tolerant reader (Malkhi–Reiter masking quorums). With
/// `b = 0` this degenerates to [`majority_threshold`].
///
/// # Panics
///
/// Panics if `n == 0` or the threshold would exceed `n` (which happens when
/// `n < 2b + 1` — no such quorum exists). Note protocols typically require
/// the stronger `n ≥ 4b + 1` for liveness; that is their assertion to make.
///
/// # Examples
///
/// ```
/// use abd_core::quorum::masking_threshold;
/// assert_eq!(masking_threshold(5, 0), 3);
/// assert_eq!(masking_threshold(5, 1), 4);
/// assert_eq!(masking_threshold(9, 2), 7);
/// ```
pub fn masking_threshold(n: usize, b: usize) -> usize {
    assert!(n > 0, "no quorum system over zero processors");
    let q = (n + 2 * b + 1).div_ceil(2);
    assert!(q <= n, "masking quorums need n >= 2b+1 (n={n}, b={b})");
    q
}

/// Whether a read may *elide its write-back phase* (the "fast path") given
/// the responders of its query phase.
///
/// The write-back exists to push the max tag a read observed to a write
/// quorum before returning, so every later read quorum intersects a
/// processor holding it. Both conditions below make that push redundant:
///
/// * `unanimous` — every responder (including the issuer's own replica)
///   reported the *same* maximum tag, so no responder needs catching up;
/// * `q.is_write_quorum(responders)` — the responder set itself already
///   constitutes a write quorum, so the tag is at a write quorum *now* and
///   every subsequent read quorum is guaranteed to intersect it.
///
/// Under [`Majority`] quorums the second condition is implied by quorum
/// collection (read quorums *are* write quorums), but for asymmetric
/// systems such as [`Threshold`] with `R < W` a unanimous read quorum may
/// still be smaller than a write quorum — eliding there would let a later
/// read quorum miss the tag entirely. This function is the **one place**
/// where the elision condition lives: the `abd-lint` `fast-path-helper`
/// rule rejects ad-hoc unanimity checks in protocol handlers.
///
/// # Examples
///
/// ```
/// use abd_core::procset::ProcSet;
/// use abd_core::quorum::{fast_read_allowed, Majority, Threshold};
/// use abd_core::types::ProcessId;
///
/// let majority = Majority::new(5);
/// let mut q = ProcSet::new(5);
/// for i in 0..3 {
///     q.insert(ProcessId(i));
/// }
/// // A unanimous majority may skip the write-back...
/// assert!(fast_read_allowed(&majority, &q, true));
/// // ...a disagreeing one may not.
/// assert!(!fast_read_allowed(&majority, &q, false));
///
/// // R = 2, W = 4: a unanimous read quorum is not a write quorum, so the
/// // tag may still be missing from some future read quorum — no elision.
/// let skewed = Threshold::new(5, 2, 4);
/// let mut r = ProcSet::new(5);
/// r.insert(ProcessId(0));
/// r.insert(ProcessId(1));
/// assert!(!fast_read_allowed(&skewed, &r, true));
/// ```
pub fn fast_read_allowed(q: &dyn QuorumSystem, responders: &ProcSet, unanimous: bool) -> bool {
    unanimous && q.is_write_quorum(responders)
}

/// A quorum system over processors `0..n`.
///
/// Implementations answer, for an arbitrary set of responders, whether the
/// set contains a read quorum or a write quorum. Both predicates must be
/// *monotone* (supersets of quorums are quorums) — protocols rely on this by
/// testing the accumulated responder set after every acknowledgement.
///
/// # Correctness contract
///
/// For the emulation to be atomic:
///
/// * every read quorum must intersect every write quorum, and
/// * for multi-writer registers, every two write quorums must intersect.
///
/// [`validate`](QuorumSystem::validate) checks these analytically;
/// `check_by_enumeration` verifies them exhaustively for small `n` and is
/// used by this module's tests.
pub trait QuorumSystem: fmt::Debug + Send + Sync {
    /// Total number of processors.
    fn n(&self) -> usize;

    /// Whether `s` contains a read quorum.
    fn is_read_quorum(&self, s: &ProcSet) -> bool;

    /// Whether `s` contains a write quorum.
    fn is_write_quorum(&self, s: &ProcSet) -> bool;

    /// Analytic check of the intersection properties.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError`] if read/write quorums may fail to intersect,
    /// or (when `multi_writer`) if two write quorums may fail to intersect.
    fn validate(&self, multi_writer: bool) -> Result<(), QuorumError>;

    /// Short human-readable description used in benchmark tables.
    fn describe(&self) -> String;
}

/// Error returned by [`QuorumSystem::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QuorumError {
    /// A read quorum and a write quorum can be disjoint.
    ReadWriteDisjoint(String),
    /// Two write quorums can be disjoint (fatal for multi-writer registers).
    WriteWriteDisjoint(String),
    /// The system's parameters are internally inconsistent.
    Malformed(String),
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::ReadWriteDisjoint(s) => {
                write!(f, "read and write quorums may be disjoint: {s}")
            }
            QuorumError::WriteWriteDisjoint(s) => {
                write!(f, "two write quorums may be disjoint: {s}")
            }
            QuorumError::Malformed(s) => write!(f, "malformed quorum system: {s}"),
        }
    }
}

impl std::error::Error for QuorumError {}

/// The majority quorum system of the paper: any `⌊n/2⌋ + 1` processors form
/// both a read and a write quorum.
///
/// Tolerates `f = ⌈n/2⌉ − 1` crash failures, which the paper proves optimal.
///
/// # Examples
///
/// ```
/// use abd_core::quorum::{Majority, QuorumSystem};
/// use abd_core::procset::ProcSet;
/// use abd_core::types::ProcessId;
///
/// let q = Majority::new(5);
/// let two = ProcSet::from_iter_with_capacity(5, [ProcessId(0), ProcessId(1)]);
/// let three = ProcSet::from_iter_with_capacity(5, [ProcessId(0), ProcessId(1), ProcessId(4)]);
/// assert!(!q.is_read_quorum(&two));
/// assert!(q.is_read_quorum(&three));
/// assert!(q.validate(true).is_ok());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Majority {
    n: usize,
}

impl Majority {
    /// Creates the majority system for `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "cluster size must be positive");
        Majority { n }
    }

    /// The quorum cardinality, `⌊n/2⌋ + 1`.
    pub fn quorum_size(&self) -> usize {
        majority_threshold(self.n)
    }

    /// Maximum number of crash failures tolerated, `⌈n/2⌉ − 1`.
    pub fn max_failures(&self) -> usize {
        self.n - self.quorum_size()
    }
}

impl QuorumSystem for Majority {
    fn n(&self) -> usize {
        self.n
    }

    fn is_read_quorum(&self, s: &ProcSet) -> bool {
        s.len() >= self.quorum_size()
    }

    fn is_write_quorum(&self, s: &ProcSet) -> bool {
        s.len() >= self.quorum_size()
    }

    fn validate(&self, _multi_writer: bool) -> Result<(), QuorumError> {
        Ok(()) // 2 * (⌊n/2⌋ + 1) > n for every n ≥ 1.
    }

    fn describe(&self) -> String {
        format!("majority(n={}, q={})", self.n, self.quorum_size())
    }
}

/// Dynamo-style threshold quorums: `r` responders form a read quorum, `w`
/// acknowledgements form a write quorum.
///
/// Atomic only when `r + w > n` (and `2w > n` for multiple writers). The
/// constructor does **not** reject non-intersecting configurations — the
/// deliberately broken `R=1` baselines of experiment **T5** are built from
/// them — but [`validate`](QuorumSystem::validate) reports them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Threshold {
    n: usize,
    r: usize,
    w: usize,
}

impl Threshold {
    /// Creates an `r`-out-of-`n` read / `w`-out-of-`n` write system.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `w` is `0` or exceeds `n`.
    pub fn new(n: usize, r: usize, w: usize) -> Self {
        assert!(
            n > 0 && (1..=n).contains(&r) && (1..=n).contains(&w),
            "need 1 <= r,w <= n"
        );
        Threshold { n, r, w }
    }

    /// Read threshold.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Write threshold.
    pub fn w(&self) -> usize {
        self.w
    }
}

impl QuorumSystem for Threshold {
    fn n(&self) -> usize {
        self.n
    }

    fn is_read_quorum(&self, s: &ProcSet) -> bool {
        s.len() >= self.r
    }

    fn is_write_quorum(&self, s: &ProcSet) -> bool {
        s.len() >= self.w
    }

    fn validate(&self, multi_writer: bool) -> Result<(), QuorumError> {
        if self.r + self.w <= self.n {
            return Err(QuorumError::ReadWriteDisjoint(format!(
                "r + w = {} <= n = {}",
                self.r + self.w,
                self.n
            )));
        }
        if multi_writer && 2 * self.w <= self.n {
            return Err(QuorumError::WriteWriteDisjoint(format!(
                "2w = {} <= n = {}",
                2 * self.w,
                self.n
            )));
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!("threshold(n={}, r={}, w={})", self.n, self.r, self.w)
    }
}

/// Gifford-style weighted voting: each processor carries a vote weight; a
/// set is a read (write) quorum when its total weight reaches the read
/// (write) threshold.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Weighted {
    weights: Vec<u64>,
    read_threshold: u64,
    write_threshold: u64,
}

impl Weighted {
    /// Creates a weighted-voting system.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or either threshold is `0` or exceeds the
    /// total weight.
    pub fn new(weights: Vec<u64>, read_threshold: u64, write_threshold: u64) -> Self {
        assert!(!weights.is_empty(), "need at least one processor");
        let total: u64 = weights.iter().sum();
        assert!(
            (1..=total).contains(&read_threshold) && (1..=total).contains(&write_threshold),
            "thresholds must be in 1..=total weight ({total})"
        );
        Weighted {
            weights,
            read_threshold,
            write_threshold,
        }
    }

    fn weight_of(&self, s: &ProcSet) -> u64 {
        s.iter().map(|p| self.weights[p.index()]).sum()
    }

    /// Total vote weight in the system.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }
}

impl QuorumSystem for Weighted {
    fn n(&self) -> usize {
        self.weights.len()
    }

    fn is_read_quorum(&self, s: &ProcSet) -> bool {
        self.weight_of(s) >= self.read_threshold
    }

    fn is_write_quorum(&self, s: &ProcSet) -> bool {
        self.weight_of(s) >= self.write_threshold
    }

    fn validate(&self, multi_writer: bool) -> Result<(), QuorumError> {
        let total = self.total_weight();
        if self.read_threshold + self.write_threshold <= total {
            return Err(QuorumError::ReadWriteDisjoint(format!(
                "read + write thresholds = {} <= total weight = {total}",
                self.read_threshold + self.write_threshold
            )));
        }
        if multi_writer && 2 * self.write_threshold <= total {
            return Err(QuorumError::WriteWriteDisjoint(format!(
                "2 * write threshold = {} <= total weight = {total}",
                2 * self.write_threshold
            )));
        }
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "weighted(n={}, total={}, r={}, w={})",
            self.weights.len(),
            self.total_weight(),
            self.read_threshold,
            self.write_threshold
        )
    }
}

/// Grid quorums on a `rows × cols` arrangement of the processors
/// (processor `p` sits at row `p / cols`, column `p % cols`).
///
/// * a **read quorum** covers every column (one element per column suffices —
///   size `cols` at minimum);
/// * a **write quorum** covers every column *and* fully contains some column
///   (minimum size `cols + rows − 1`).
///
/// With `rows ≈ cols ≈ √n` both quorums have `O(√n)` size, trading the
/// majority system's best-possible resilience for smaller quorums — the
/// trade-off experiment **F4** measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grid {
    rows: usize,
    cols: usize,
}

impl Grid {
    /// Creates a `rows × cols` grid (so `n = rows * cols`).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is `0`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        Grid { rows, cols }
    }

    /// Squarest grid for `n` processors, if `n` is expressible as `r × c`
    /// with `r, c ≥ 1`. Perfect squares give `√n × √n`.
    pub fn squarest(n: usize) -> Option<Grid> {
        if n == 0 {
            return None;
        }
        let mut best = None;
        for r in 1..=n {
            if n.is_multiple_of(r) {
                let c = n / r;
                let d = r.abs_diff(c);
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, r, c));
                }
            }
        }
        best.map(|(_, r, c)| Grid::new(r, c))
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn covers_every_column(&self, s: &ProcSet) -> bool {
        (0..self.cols).all(|c| (0..self.rows).any(|r| s.contains(ProcessId(r * self.cols + c))))
    }

    fn contains_full_column(&self, s: &ProcSet) -> bool {
        (0..self.cols).any(|c| (0..self.rows).all(|r| s.contains(ProcessId(r * self.cols + c))))
    }
}

impl QuorumSystem for Grid {
    fn n(&self) -> usize {
        self.rows * self.cols
    }

    fn is_read_quorum(&self, s: &ProcSet) -> bool {
        self.covers_every_column(s)
    }

    fn is_write_quorum(&self, s: &ProcSet) -> bool {
        self.covers_every_column(s) && self.contains_full_column(s)
    }

    fn validate(&self, _multi_writer: bool) -> Result<(), QuorumError> {
        // A write quorum fully contains some column c; a read quorum covers
        // every column, hence holds an element of c: they intersect. Two
        // write quorums W1 (full column c1) and W2 (covers every column,
        // including c1) intersect likewise.
        Ok(())
    }

    fn describe(&self) -> String {
        format!("grid({}x{})", self.rows, self.cols)
    }
}

/// Exhaustively verifies the intersection properties of `q` by enumerating
/// every pair of subsets of `0..n`. Exponential — intended for tests with
/// `n ≤ 12` or so.
///
/// Returns the same errors as [`QuorumSystem::validate`] when a
/// counterexample pair is found.
///
/// # Errors
///
/// [`QuorumError::ReadWriteDisjoint`] / [`QuorumError::WriteWriteDisjoint`]
/// with the offending pair rendered into the message.
pub fn check_by_enumeration(q: &dyn QuorumSystem, multi_writer: bool) -> Result<(), QuorumError> {
    let n = q.n();
    assert!(n <= 20, "enumeration check is exponential; use small n");
    let sets: Vec<ProcSet> = (0u32..(1 << n))
        .map(|mask| {
            ProcSet::from_iter_with_capacity(
                n,
                (0..n).filter(|i| mask & (1 << i) != 0).map(ProcessId),
            )
        })
        .collect();
    let reads: Vec<&ProcSet> = sets.iter().filter(|s| q.is_read_quorum(s)).collect();
    let writes: Vec<&ProcSet> = sets.iter().filter(|s| q.is_write_quorum(s)).collect();
    for r in &reads {
        for w in &writes {
            if !(r.intersects(w) || r.is_empty() && w.is_empty()) {
                return Err(QuorumError::ReadWriteDisjoint(format!("{r:?} vs {w:?}")));
            }
        }
    }
    if multi_writer {
        for w1 in &writes {
            for w2 in &writes {
                if !(w1.intersects(w2) || w1.is_empty() && w2.is_empty()) {
                    return Err(QuorumError::WriteWriteDisjoint(format!("{w1:?} vs {w2:?}")));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize, ids: &[usize]) -> ProcSet {
        ProcSet::from_iter_with_capacity(n, ids.iter().copied().map(ProcessId))
    }

    #[test]
    fn majority_sizes() {
        for (n, q, f) in [
            (1, 1, 0),
            (2, 2, 0),
            (3, 2, 1),
            (4, 3, 1),
            (5, 3, 2),
            (7, 4, 3),
        ] {
            let m = Majority::new(n);
            assert_eq!(m.quorum_size(), q, "n={n}");
            assert_eq!(m.max_failures(), f, "n={n}");
        }
    }

    #[test]
    fn majority_enumeration_holds() {
        for n in 1..=7 {
            check_by_enumeration(&Majority::new(n), true).unwrap();
        }
    }

    #[test]
    fn fast_read_boundary_exactly_write_quorum_sized_sets() {
        // R = 2, W = 4 over n = 5: elision flips exactly at the write
        // threshold. A unanimous set of 3 (a read quorum and then some) is
        // still one short of a write quorum; a unanimous set of exactly 4
        // is the smallest that may skip the write-back.
        let skewed = Threshold::new(5, 2, 4);
        assert!(!fast_read_allowed(&skewed, &set(5, &[0, 1, 2]), true));
        assert!(!fast_read_allowed(&skewed, &set(5, &[0, 1, 2]), false));
        assert!(fast_read_allowed(&skewed, &set(5, &[0, 1, 2, 3]), true));
        assert!(!fast_read_allowed(&skewed, &set(5, &[0, 1, 2, 3]), false));

        // Majority quorums: the read quorum *is* a write quorum, so the
        // boundary sits at ⌊n/2⌋+1 exactly.
        let m = Majority::new(5);
        assert!(!fast_read_allowed(&m, &set(5, &[0, 1]), true));
        assert!(fast_read_allowed(&m, &set(5, &[0, 1, 2]), true));
    }

    #[test]
    fn fast_read_boundary_even_n_majority_vs_write_quorum_split() {
        // n = 6: exactly half the cluster is NOT a majority — a unanimous
        // 3-of-6 set must never elide (its complement is another 3-set the
        // tag may have missed entirely).
        let m = Majority::new(6);
        assert_eq!(m.quorum_size(), 4);
        assert!(!fast_read_allowed(&m, &set(6, &[0, 1, 2]), true));
        assert!(fast_read_allowed(&m, &set(6, &[0, 1, 2, 3]), true));

        // Even n with split thresholds: R = 3 read quorums collect at the
        // half-cluster mark, but the write threshold W = 4 still gates the
        // fast path — a unanimous read quorum alone is not enough.
        let split = Threshold::new(6, 3, 4);
        assert!(split.validate(false).is_ok());
        let read_quorum = set(6, &[0, 1, 2]);
        assert!(split.is_read_quorum(&read_quorum));
        assert!(!fast_read_allowed(&split, &read_quorum, true));
        assert!(fast_read_allowed(&split, &set(6, &[0, 1, 2, 3]), true));
    }

    #[test]
    fn threshold_validates_intersection() {
        assert!(Threshold::new(5, 3, 3).validate(true).is_ok());
        assert!(Threshold::new(5, 2, 4).validate(false).is_ok());
        assert!(matches!(
            Threshold::new(5, 2, 3).validate(false),
            Err(QuorumError::ReadWriteDisjoint(_))
        ));
        assert!(matches!(
            Threshold::new(5, 4, 2).validate(true),
            Err(QuorumError::WriteWriteDisjoint(_))
        ));
    }

    #[test]
    fn threshold_enumeration_agrees_with_validate() {
        for n in 1..=6 {
            for r in 1..=n {
                for w in 1..=n {
                    let t = Threshold::new(n, r, w);
                    for mw in [false, true] {
                        let analytic = t.validate(mw).is_ok();
                        let exhaustive = check_by_enumeration(&t, mw).is_ok();
                        assert_eq!(analytic, exhaustive, "n={n} r={r} w={w} mw={mw}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 <= r,w <= n")]
    fn threshold_rejects_zero_r() {
        Threshold::new(3, 0, 2);
    }

    #[test]
    fn weighted_counts_weight_not_cardinality() {
        // One heavy node (weight 3) + four light ones (weight 1 each).
        let q = Weighted::new(vec![3, 1, 1, 1, 1], 4, 4);
        assert!(q.validate(true).is_ok());
        // Heavy node + one light = weight 4: a quorum of only 2 processors.
        assert!(q.is_read_quorum(&set(5, &[0, 1])));
        // Three light nodes = weight 3: not a quorum despite cardinality 3.
        assert!(!q.is_read_quorum(&set(5, &[1, 2, 3])));
        check_by_enumeration(&q, true).unwrap();
    }

    #[test]
    fn weighted_detects_disjoint() {
        let q = Weighted::new(vec![1; 4], 2, 2);
        assert!(matches!(
            q.validate(false),
            Err(QuorumError::ReadWriteDisjoint(_))
        ));
        assert!(check_by_enumeration(&q, false).is_err());
    }

    #[test]
    fn grid_membership() {
        // 2x3 grid: rows {0,1,2} and {3,4,5}; columns {0,3}, {1,4}, {2,5}.
        let g = Grid::new(2, 3);
        assert_eq!(g.n(), 6);
        // One element per column: read quorum but not write.
        let transversal = set(6, &[0, 4, 2]);
        assert!(g.is_read_quorum(&transversal));
        assert!(!g.is_write_quorum(&transversal));
        // Column {1,4} + covering elements for the other columns.
        let w = set(6, &[1, 4, 0, 2]);
        assert!(g.is_write_quorum(&w));
        // Full column alone does not cover other columns: not even a read quorum.
        let col = set(6, &[1, 4]);
        assert!(!g.is_read_quorum(&col));
        assert!(!g.is_write_quorum(&col));
    }

    #[test]
    fn grid_enumeration_holds() {
        for (r, c) in [(1, 1), (2, 2), (2, 3), (3, 2), (3, 3), (2, 4)] {
            check_by_enumeration(&Grid::new(r, c), true).unwrap();
        }
    }

    #[test]
    fn grid_squarest() {
        assert_eq!(Grid::squarest(9), Some(Grid::new(3, 3)));
        assert_eq!(
            Grid::squarest(12).map(|g| (g.rows(), g.cols())),
            Some((3, 4))
        );
        assert_eq!(
            Grid::squarest(7).map(|g| (g.rows(), g.cols())),
            Some((1, 7))
        );
        assert_eq!(Grid::squarest(0), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(Majority::new(5).describe(), "majority(n=5, q=3)");
        assert_eq!(
            Threshold::new(5, 1, 5).describe(),
            "threshold(n=5, r=1, w=5)"
        );
        assert_eq!(Grid::new(3, 3).describe(), "grid(3x3)");
        assert!(Weighted::new(vec![1, 2], 2, 2)
            .describe()
            .starts_with("weighted"));
    }

    #[test]
    fn quorum_predicates_are_monotone() {
        // Adding members never destroys quorum-ness (spot check on grid,
        // the least obviously monotone implementation).
        let g = Grid::new(2, 3);
        let mut s = set(6, &[0, 4, 2]);
        assert!(g.is_read_quorum(&s));
        for extra in [1, 3, 5] {
            s.insert(ProcessId(extra));
            assert!(g.is_read_quorum(&s));
        }
        assert!(g.is_write_quorum(&ProcSet::full(6)));
    }
}
