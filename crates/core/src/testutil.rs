//! A minimal deterministic executor for unit-testing protocol state
//! machines inside this crate.
//!
//! `MiniNet` delivers messages in FIFO order, supports crash flags, a
//! pluggable message-drop filter and manual timer firing. It deliberately
//! has no notion of time or randomness — the full adversarial simulator
//! lives in the `abd-simnet` crate; this one exists so `abd-core`'s tests
//! need no dependencies.

use crate::context::{Effects, Protocol, TimerCmd, TimerKey};
use crate::types::{OpId, ProcessId};
use std::collections::{BTreeSet, VecDeque};

type DropFilter<M> = Box<dyn FnMut(ProcessId, ProcessId, &M) -> bool>;

/// Deterministic FIFO test network over a vector of protocol nodes.
pub(crate) struct MiniNet<P: Protocol> {
    nodes: Vec<P>,
    alive: Vec<bool>,
    queue: VecDeque<(ProcessId, ProcessId, P::Msg)>,
    responses: Vec<(OpId, P::Resp)>,
    armed: Vec<BTreeSet<TimerKey>>,
    drop_filter: Option<DropFilter<P::Msg>>,
    next_op: u64,
    sent: u64,
    dropped: u64,
}

impl<P: Protocol> MiniNet<P> {
    /// Creates a network over `nodes` (node `i` must have id `i`) and runs
    /// every node's `on_start`.
    pub fn new(nodes: Vec<P>) -> Self {
        let n = nodes.len();
        let mut net = MiniNet {
            nodes,
            alive: vec![true; n],
            queue: VecDeque::new(),
            responses: Vec::new(),
            armed: vec![BTreeSet::new(); n],
            drop_filter: None,
            next_op: 0,
            sent: 0,
            dropped: 0,
        };
        for i in 0..n {
            debug_assert_eq!(net.nodes[i].id(), ProcessId(i));
            let mut fx = Effects::new();
            net.nodes[i].on_start(&mut fx);
            net.absorb(ProcessId(i), fx);
        }
        net
    }

    /// Immutable access to node `i`.
    pub fn node(&self, i: usize) -> &P {
        &self.nodes[i]
    }

    /// Marks node `i` as crashed: it stops receiving messages, timers and
    /// invocations.
    pub fn crash(&mut self, i: usize) {
        self.alive[i] = false;
    }

    /// Reboots a crashed node: discards its armed timers and runs
    /// `on_restart`, absorbing any catch-up traffic it emits.
    #[allow(dead_code)]
    pub fn restart(&mut self, i: usize) {
        if self.alive[i] {
            return;
        }
        self.alive[i] = true;
        self.armed[i].clear();
        let mut fx = Effects::new();
        self.nodes[i].on_restart(&mut fx);
        self.absorb(ProcessId(i), fx);
    }

    /// Installs a filter that drops a message when it returns `true`.
    pub fn set_drop_filter<F>(&mut self, f: F)
    where
        F: FnMut(ProcessId, ProcessId, &P::Msg) -> bool + 'static,
    {
        self.drop_filter = Some(Box::new(f));
    }

    /// Removes the drop filter.
    pub fn clear_drop_filter(&mut self) {
        self.drop_filter = None;
    }

    /// Invokes `op` on node `i`, assigning the next sequential [`OpId`],
    /// and immediately processes the invocation's direct effects (but does
    /// not deliver messages — call [`run_to_quiescence`](Self::run_to_quiescence)).
    pub fn invoke(&mut self, i: usize, op: P::Op) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        if !self.alive[i] {
            return id;
        }
        let mut fx = Effects::new();
        self.nodes[i].on_invoke(id, op, &mut fx);
        self.absorb(ProcessId(i), fx);
        id
    }

    /// Delivers queued messages in FIFO order until the network is quiet.
    pub fn run_to_quiescence(&mut self) {
        while let Some((from, to, msg)) = self.queue.pop_front() {
            if !self.alive[to.index()] {
                self.dropped += 1;
                continue;
            }
            if let Some(f) = self.drop_filter.as_mut() {
                if f(from, to, &msg) {
                    self.dropped += 1;
                    continue;
                }
            }
            let mut fx = Effects::new();
            self.nodes[to.index()].on_message(from, msg, &mut fx);
            self.absorb(to, fx);
        }
    }

    /// Fires every armed timer of node `i` exactly once (in key order).
    pub fn fire_timers(&mut self, i: usize) {
        if !self.alive[i] {
            return;
        }
        let keys: Vec<TimerKey> = self.armed[i].iter().copied().collect();
        for key in keys {
            // Firing consumes the arming; protocols re-arm if they want more.
            self.armed[i].remove(&key);
            let mut fx = Effects::new();
            self.nodes[i].on_timer(key, &mut fx);
            self.absorb(ProcessId(i), fx);
        }
    }

    /// Takes the responses accumulated so far, in completion order.
    pub fn take_responses(&mut self) -> Vec<(OpId, P::Resp)> {
        std::mem::take(&mut self.responses)
    }

    /// Total messages handed to the network so far (including later-dropped
    /// ones).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped by crash flags or the drop filter.
    #[allow(dead_code)]
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    fn absorb(&mut self, from: ProcessId, fx: Effects<P::Msg, P::Resp>) {
        for (to, m) in fx.sends {
            self.sent += 1;
            self.queue.push_back((from, to, m));
        }
        for t in fx.timers {
            match t {
                TimerCmd::Set { key, .. } => {
                    self.armed[from.index()].insert(key);
                }
                TimerCmd::Cancel { key } => {
                    self.armed[from.index()].remove(&key);
                }
            }
        }
        self.responses.extend(fx.responses);
    }
}
