//! Adaptive retransmission for unfinished phases.
//!
//! The original emulation re-broadcast a whole phase at a fixed interval —
//! simple, but wasteful on two axes: it keeps hammering processors that
//! already answered, and under a long partition it sends at full rate the
//! entire time. This module replaces that with the standard remedy
//! (cf. the message-efficiency line of work following the paper):
//!
//! * **targeted**: retransmissions go only to the processors the phase is
//!   still missing ([`crate::phase::PhaseTracker::missing`]);
//! * **exponential backoff**: the retry delay doubles (by default) on every
//!   attempt, up to a cap, so a blocked phase converges to a slow heartbeat
//!   instead of a message storm;
//! * **deterministic jitter**: each delay is perturbed by ±1/8 of itself,
//!   derived from a pure hash of `(node, phase-uid, attempt)` — no RNG
//!   state, so the same execution replays bit-identically, yet distinct
//!   nodes and phases desynchronize instead of thundering in lockstep.
//!
//! All timing flows through [`Effects`](crate::context::Effects) timers;
//! this module never reads a clock.

use crate::context::{Effects, TimerKey};
use crate::types::{Nanos, ProcessId};

/// SplitMix64 finalizer — a cheap, well-mixed pure hash for jitter.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Retransmission timing: exponential backoff with a cap and deterministic
/// jitter.
///
/// The delay before attempt `k` (0-based) is
/// `min(base * factor^k, cap)`, jittered into `[7/8·d, 9/8·d]` when
/// [`jitter`](BackoffPolicy::jitter) is on.
///
/// # Examples
///
/// ```
/// use abd_core::retransmit::BackoffPolicy;
///
/// let p = BackoffPolicy::new(1_000);
/// assert_eq!(p.base, 1_000);
/// assert_eq!(p.cap, 16_000);
/// // Delays grow but never exceed the jittered cap.
/// for k in 0..10 {
///     assert!(p.delay(k, 7) <= p.max_delay());
/// }
/// // Pure function: same inputs, same delay.
/// assert_eq!(p.delay(3, 42), p.delay(3, 42));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackoffPolicy {
    /// Delay before the first retransmission.
    pub base: Nanos,
    /// Upper bound on the (pre-jitter) delay.
    pub cap: Nanos,
    /// Multiplier applied per attempt (`1` = fixed interval).
    pub factor: u32,
    /// Whether to apply deterministic ±1/8 jitter.
    pub jitter: bool,
}

impl BackoffPolicy {
    /// Doubling backoff starting at `base`, capped at `16 * base`, with
    /// jitter — the default adaptive policy.
    pub fn new(base: Nanos) -> Self {
        let base = base.max(1);
        BackoffPolicy {
            base,
            cap: base.saturating_mul(16),
            factor: 2,
            jitter: true,
        }
    }

    /// A fixed-interval policy (no growth, no jitter) — the legacy
    /// behaviour, still useful when tests need exact timer arithmetic.
    pub fn fixed(every: Nanos) -> Self {
        let every = every.max(1);
        BackoffPolicy {
            base: every,
            cap: every,
            factor: 1,
            jitter: false,
        }
    }

    /// Replaces the delay cap.
    pub fn with_cap(mut self, cap: Nanos) -> Self {
        self.cap = cap.max(self.base);
        self
    }

    /// Replaces the per-attempt multiplier.
    pub fn with_factor(mut self, factor: u32) -> Self {
        self.factor = factor.max(1);
        self
    }

    /// Enables or disables jitter.
    pub fn with_jitter(mut self, yes: bool) -> Self {
        self.jitter = yes;
        self
    }

    /// The delay before attempt `attempt` (0-based), jittered by a pure
    /// hash of `salt` and the attempt number.
    pub fn delay(&self, attempt: u32, salt: u64) -> Nanos {
        let mut d = self.base;
        for _ in 0..attempt {
            if d >= self.cap {
                break;
            }
            d = d.saturating_mul(u64::from(self.factor));
        }
        d = d.min(self.cap).max(1);
        if self.jitter {
            // d ± d/8, drawn from mix64(salt, attempt): spread = d/4 + 1
            // possible values centered on d.
            let spread = d / 4;
            if spread > 0 {
                let h = mix64(salt ^ (u64::from(attempt) << 32));
                d = d - d / 8 + h % (spread + 1);
            }
        }
        d
    }

    /// Upper bound on any delay this policy can produce — the quantity
    /// liveness bounds are derived from.
    pub fn max_delay(&self) -> Nanos {
        if self.jitter {
            self.cap.saturating_add(self.cap / 8)
        } else {
            self.cap
        }
    }
}

/// Per-node retransmission driver shared by every protocol in this crate.
///
/// Protocols keep at most one phase in flight, so one `Retransmitter` per
/// node suffices: [`arm`](Retransmitter::arm) when a phase starts,
/// [`disarm`](Retransmitter::disarm) when it completes, and
/// [`fire`](Retransmitter::fire) from `on_timer` to resend the phase
/// message to the processors still missing and schedule the next, longer
/// attempt.
///
/// # Examples
///
/// ```
/// use abd_core::context::Effects;
/// use abd_core::retransmit::{BackoffPolicy, Retransmitter};
/// use abd_core::types::ProcessId;
///
/// let mut rtx = Retransmitter::new(Some(BackoffPolicy::new(500)), ProcessId(2));
/// let mut fx: Effects<&'static str, ()> = Effects::new();
/// rtx.arm(7, &mut fx);
/// assert_eq!(fx.timers.len(), 1);
/// rtx.fire(7, &[ProcessId(0), ProcessId(1)], "retry", &mut fx);
/// assert_eq!(fx.sends.len(), 2);
/// assert_eq!(rtx.retransmissions(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Retransmitter {
    policy: Option<BackoffPolicy>,
    /// Per-node salt so different nodes jitter differently.
    salt: u64,
    /// Retry attempts of the currently armed phase.
    attempt: u32,
    /// Total messages retransmitted over the node's lifetime.
    sent: u64,
}

impl Retransmitter {
    /// Creates a driver for node `me`; `None` disables retransmission
    /// entirely (reliable links).
    pub fn new(policy: Option<BackoffPolicy>, me: ProcessId) -> Self {
        Retransmitter {
            policy,
            salt: mix64(me.index() as u64 + 1),
            attempt: 0,
            sent: 0,
        }
    }

    /// Whether retransmission is enabled.
    pub fn enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// The configured policy, if any.
    pub fn policy(&self) -> Option<&BackoffPolicy> {
        self.policy.as_ref()
    }

    /// Total messages this node has retransmitted.
    pub fn retransmissions(&self) -> u64 {
        self.sent
    }

    /// Starts the retry schedule for a fresh phase `uid`: resets the
    /// attempt counter and arms the phase timer with the first delay.
    pub fn arm<M, R>(&mut self, uid: u64, fx: &mut Effects<M, R>) {
        self.attempt = 0;
        if let Some(p) = self.policy {
            fx.set_timer(TimerKey(uid), p.delay(0, self.salt ^ uid));
        }
    }

    /// Stops the retry schedule (the phase completed).
    pub fn disarm<M, R>(&mut self, uid: u64, fx: &mut Effects<M, R>) {
        if self.policy.is_some() {
            fx.cancel_timer(TimerKey(uid));
        }
    }

    /// Phase timer fired: resend `msg` to exactly the `missing` responders
    /// and schedule the next attempt with a longer (backed-off) delay.
    pub fn fire<M: Clone, R>(
        &mut self,
        uid: u64,
        missing: &[ProcessId],
        msg: M,
        fx: &mut Effects<M, R>,
    ) {
        let Some(p) = self.policy else {
            return;
        };
        for &to in missing {
            fx.send(to, msg.clone());
        }
        self.sent += missing.len() as u64;
        self.attempt = self.attempt.saturating_add(1);
        fx.set_timer(TimerKey(uid), p.delay(self.attempt, self.salt ^ uid));
    }

    /// Forgets in-flight retry state (crash recovery wipes volatile state;
    /// lifetime counters survive for metrics).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_never_grows() {
        let p = BackoffPolicy::fixed(1_000);
        for k in 0..20 {
            assert_eq!(p.delay(k, 9), 1_000);
        }
        assert_eq!(p.max_delay(), 1_000);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = BackoffPolicy::new(1_000).with_jitter(false);
        assert_eq!(p.delay(0, 0), 1_000);
        assert_eq!(p.delay(1, 0), 2_000);
        assert_eq!(p.delay(2, 0), 4_000);
        assert_eq!(p.delay(4, 0), 16_000);
        assert_eq!(p.delay(10, 0), 16_000, "capped at 16x base");
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let p = BackoffPolicy::new(8_000);
        for attempt in 0..8 {
            for salt in 0..50u64 {
                let d = p.delay(attempt, salt);
                let nominal = p.with_jitter(false).delay(attempt, salt);
                assert!(d >= nominal - nominal / 8, "{d} under band at {nominal}");
                assert!(d <= nominal + nominal / 8, "{d} over band at {nominal}");
                assert_eq!(d, p.delay(attempt, salt), "pure function");
            }
        }
    }

    #[test]
    fn jitter_desynchronizes_salts() {
        let p = BackoffPolicy::new(8_000);
        let delays: std::collections::BTreeSet<Nanos> =
            (0..16u64).map(|salt| p.delay(0, salt)).collect();
        assert!(delays.len() > 1, "distinct salts should spread delays");
    }

    #[test]
    fn retransmitter_targets_only_missing() {
        let mut rtx = Retransmitter::new(Some(BackoffPolicy::new(100)), ProcessId(0));
        let mut fx: Effects<u8, ()> = Effects::new();
        rtx.arm(1, &mut fx);
        rtx.fire(1, &[ProcessId(2)], 7u8, &mut fx);
        rtx.fire(1, &[], 7u8, &mut fx);
        assert_eq!(fx.sends, vec![(ProcessId(2), 7u8)]);
        assert_eq!(rtx.retransmissions(), 1);
        // Three Set commands: arm + one per fire (even with no targets the
        // phase stays armed, e.g. everyone responded but the quorum needs a
        // specific shape).
        assert_eq!(fx.timers.len(), 3);
    }

    #[test]
    fn delays_back_off_across_fires() {
        let mut rtx = Retransmitter::new(
            Some(BackoffPolicy::new(1_000).with_jitter(false)),
            ProcessId(0),
        );
        let mut fx: Effects<u8, ()> = Effects::new();
        rtx.arm(5, &mut fx);
        rtx.fire(5, &[ProcessId(1)], 0u8, &mut fx);
        rtx.fire(5, &[ProcessId(1)], 0u8, &mut fx);
        let delays: Vec<Nanos> = fx
            .timers
            .iter()
            .filter_map(|t| match t {
                crate::context::TimerCmd::Set { after, .. } => Some(*after),
                _ => None,
            })
            .collect();
        assert_eq!(delays, vec![1_000, 2_000, 4_000]);
    }

    #[test]
    fn disabled_retransmitter_is_inert() {
        let mut rtx = Retransmitter::new(None, ProcessId(0));
        let mut fx: Effects<u8, ()> = Effects::new();
        rtx.arm(1, &mut fx);
        rtx.disarm(1, &mut fx);
        rtx.fire(1, &[ProcessId(1)], 0u8, &mut fx);
        assert!(fx.is_empty());
        assert!(!rtx.enabled());
    }

    #[test]
    fn reset_restarts_the_backoff_ladder() {
        let mut rtx = Retransmitter::new(
            Some(BackoffPolicy::new(1_000).with_jitter(false)),
            ProcessId(0),
        );
        let mut fx: Effects<u8, ()> = Effects::new();
        rtx.fire(1, &[ProcessId(1)], 0u8, &mut fx);
        rtx.fire(1, &[ProcessId(1)], 0u8, &mut fx);
        rtx.reset();
        rtx.arm(2, &mut fx);
        let last = fx.timers.last().unwrap();
        assert_eq!(
            *last,
            crate::context::TimerCmd::Set {
                key: TimerKey(2),
                after: 1_000
            }
        );
        assert_eq!(rtx.retransmissions(), 2, "counters survive reset");
    }
}
