//! Fundamental identifier and timestamp types shared by every protocol in
//! this crate.
//!
//! The ABD emulation runs on a fixed, fully connected set of `n` processors
//! named by dense indices (`ProcessId`). Register values are tagged with
//! totally ordered *labels*: plain sequence numbers for the single-writer
//! protocol ([`SeqNo`]) and `(sequence, writer)` pairs for the multi-writer
//! protocol ([`Tag`]).

use std::fmt;

/// Virtual (or real) time expressed in nanoseconds.
///
/// The protocol core never interprets absolute times; it only hands
/// durations to the host when arming retransmission timers.
pub type Nanos = u64;

/// Identifier of a processor in the system.
///
/// Processors are named `0..n` for a cluster of size `n`. The id doubles as
/// an index into per-processor tables and as the tie-breaking component of
/// multi-writer [`Tag`]s.
///
/// # Examples
///
/// ```
/// use abd_core::types::ProcessId;
/// let p = ProcessId(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the dense index of this processor.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Identifier of a client operation instance.
///
/// Assigned by the host (simulator or runtime) when an operation is invoked
/// on a node; echoed back in the corresponding response so the host can match
/// completions to invocations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Unbounded sequence number used as the label of the single-writer
/// protocol.
///
/// The single writer increments it once per write; `0` labels the initial
/// value of the register.
pub type SeqNo = u64;

/// Label of the multi-writer protocol: a `(sequence, writer)` pair ordered
/// lexicographically.
///
/// Two different writers can never produce the same tag because the writer id
/// breaks ties, which is exactly what makes the multi-writer emulation's
/// labels totally ordered.
///
/// # Examples
///
/// ```
/// use abd_core::types::{ProcessId, Tag};
/// let a = Tag::new(3, ProcessId(0));
/// let b = Tag::new(3, ProcessId(1));
/// let c = Tag::new(4, ProcessId(0));
/// assert!(a < b);
/// assert!(b < c);
/// assert_eq!(b.next(ProcessId(2)), Tag::new(4, ProcessId(2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tag {
    /// Monotonically increasing sequence component.
    pub seq: u64,
    /// Writer id; breaks ties between concurrent writers.
    pub writer: ProcessId,
}

impl Tag {
    /// Creates a tag from its components.
    pub fn new(seq: u64, writer: ProcessId) -> Self {
        Tag { seq, writer }
    }

    /// The tag labelling the initial register value (smaller than every tag
    /// any writer produces).
    pub fn initial() -> Self {
        Tag {
            seq: 0,
            writer: ProcessId(0),
        }
    }

    /// Returns the tag a writer `w` should use after observing `self` as the
    /// largest tag in its query phase.
    pub fn next(self, w: ProcessId) -> Self {
        Tag {
            seq: self.seq + 1,
            writer: w,
        }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.seq, self.writer)
    }
}

/// How a reader completes, chosen per node via `with_read_mode` on the
/// protocol configs.
///
/// The three modes trade message count against latency under contention:
///
/// * [`TwoRound`](ReadMode::TwoRound) — the paper's protocol: query a read
///   quorum, then write the chosen pair back to a write quorum. Always two
///   round trips.
/// * [`FastUnanimous`](ReadMode::FastUnanimous) — elide the write-back when
///   the query quorum unanimously reported one maximum label *and* forms a
///   write quorum (see `abd_core::quorum::fast_read_allowed`). One round
///   when uncontended, but any concurrent write destroys unanimity and the
///   read degrades back to two rounds.
/// * [`Relay`](ReadMode::Relay) — servers forward their `(label, value)`
///   to each other and reply to the reader directly once their forwards
///   cover a read quorum ("Oh-RAM!", Hadjistasi–Nicolaou–Schwarzmann).
///   Every read — contended or not — completes in one and a half message
///   delays, at the cost of `O(n²)` server messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum ReadMode {
    /// Query + write-back: the paper's always-atomic baseline.
    #[default]
    TwoRound,
    /// One-round reads when a unanimous query quorum is a write quorum.
    FastUnanimous,
    /// Server-to-server relay: 1.5 message delays for every read.
    Relay,
}

/// Per-operation consistency level for *read* operations.
///
/// Writes always run the full two-phase protocol; the tier only relaxes what
/// a read must do before returning, trading recency guarantees for rounds and
/// messages on the same replica/retransmission/recovery machinery:
///
/// * [`Atomic`](Consistency::Atomic) — the default. Reads are linearizable:
///   query a quorum, then write the chosen pair back so no later read
///   observes an older value (the paper's full protocol; the exact path is
///   chosen by [`ReadMode`]).
/// * [`Sequential`](Consistency::Sequential) — SC-ABD style. Reads return
///   the local replica's value immediately with no network round at all.
///   Clients still observe a view consistent with *some* total order that
///   respects every client's program order, because replica labels only ever
///   advance; cross-client real-time recency is forfeited.
/// * [`Regular`](Consistency::Regular) — reads run the query round against a
///   quorum but skip the write-back. A read never returns a value that was
///   overwritten before it started, but two non-overlapping reads racing a
///   write may observe the new value then the old one (the new/old inversion
///   the write-back exists to prevent).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Consistency {
    /// Linearizable reads: query round plus write-back (or fast/relay path).
    #[default]
    Atomic,
    /// Sequentially consistent reads: serve the local replica, zero rounds.
    Sequential,
    /// Regular reads: query round only, write-back elided.
    Regular,
}

impl fmt::Display for Consistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consistency::Atomic => write!(f, "atomic"),
            Consistency::Sequential => write!(f, "sequential"),
            Consistency::Regular => write!(f, "regular"),
        }
    }
}

/// Errors surfaced by protocol nodes through their responses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegisterError {
    /// A write was invoked on a processor that is not the designated writer
    /// of a single-writer register.
    NotWriter {
        /// The processor the operation was invoked on.
        invoked_on: ProcessId,
        /// The designated writer of the register.
        writer: ProcessId,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::NotWriter { invoked_on, writer } => write!(
                f,
                "write invoked on {invoked_on} but the designated writer is {writer}"
            ),
        }
    }
}

impl std::error::Error for RegisterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_index() {
        assert_eq!(ProcessId(7).to_string(), "p7");
        assert_eq!(ProcessId::from(3).index(), 3);
    }

    #[test]
    fn tag_ordering_is_lexicographic() {
        let t00 = Tag::new(0, ProcessId(0));
        let t01 = Tag::new(0, ProcessId(1));
        let t10 = Tag::new(1, ProcessId(0));
        assert!(t00 < t01);
        assert!(t01 < t10);
        assert!(t10 > t00);
        assert_eq!(Tag::initial(), t00);
    }

    #[test]
    fn tag_next_increments_seq_and_stamps_writer() {
        let t = Tag::new(41, ProcessId(3));
        let n = t.next(ProcessId(5));
        assert_eq!(n.seq, 42);
        assert_eq!(n.writer, ProcessId(5));
        assert!(n > t);
    }

    #[test]
    fn tag_display() {
        assert_eq!(Tag::new(9, ProcessId(2)).to_string(), "9@p2");
    }

    #[test]
    fn register_error_display() {
        let e = RegisterError::NotWriter {
            invoked_on: ProcessId(1),
            writer: ProcessId(0),
        };
        assert!(e.to_string().contains("p1"));
        assert!(e.to_string().contains("p0"));
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<ProcessId>();
        assert_ss::<Tag>();
        assert_ss::<OpId>();
        assert_ss::<RegisterError>();
        assert_ss::<Consistency>();
    }

    #[test]
    fn consistency_defaults_to_atomic_and_displays() {
        assert_eq!(Consistency::default(), Consistency::Atomic);
        assert_eq!(Consistency::Atomic.to_string(), "atomic");
        assert_eq!(Consistency::Sequential.to_string(), "sequential");
        assert_eq!(Consistency::Regular.to_string(), "regular");
    }
}
