//! Batched quorum messaging: an envelope layer that coalesces same-tick
//! messages to the same peer into one network send.
//!
//! Quorum protocols are broadcast-heavy: every phase emits one message per
//! peer, and a multi-key store under pipelined load emits one message *per
//! key* per peer per phase. [`Batched`] wraps any [`Protocol`] and regroups
//! its outgoing messages per destination, shipping each group as a single
//! [`Envelope`] — so the host pays per-send overhead (one simulator event,
//! one channel hand-off, in a real deployment one syscall) once per
//! *(callback, peer)* instead of once per message. The receiving side
//! unpacks the envelope and feeds the inner protocol one message at a time,
//! in emission order, so the wrapped protocol is byte-for-byte oblivious to
//! batching: same transitions, same responses, fewer network events.
//!
//! Two flushing policies, chosen by the `window` parameter:
//!
//! * `window == 0` — **same-tick coalescing** (the default): the outbox is
//!   flushed at the end of every callback. Messages the inner protocol
//!   emitted in one transition to the same peer (e.g. several keys' worth
//!   of `Update`s after a batch of acks unblocked them) merge; latency is
//!   untouched because nothing is ever held back across callbacks.
//! * `window > 0` — **Nagle-style windowing**: the first buffered send arms
//!   a flush timer `window` nanoseconds out; everything emitted until it
//!   fires ships together. This trades up to `window` of added latency for
//!   bigger batches under pipelined load. The flush timer is
//!   [`FLUSH_KEY`]; inner protocols allocate phase uids counting up from
//!   zero and never reach it.
//!
//! A third, adaptive policy ([`Batched::adaptive`]) sizes the window from
//! observed load instead of a fixed constant: every flush inspects how many
//! messages it shipped, doubles the window (up to a cap) when the batch was
//! large, and halves it (down to zero) when the batch was small. Idle
//! traffic therefore pays no added latency — the window decays to the
//! `window == 0` same-tick policy — while pipelined bursts grow windows big
//! enough to absorb broadcast fan-out. The adaptation input is the flushed
//! message count, a pure function of the inner protocol's emission
//! sequence, so seeded runs still replay bit-identically.
//!
//! Determinism: the per-peer regrouping iterates a `BTreeMap`, so batch
//! composition and emission order are pure functions of the inner
//! protocol's emission sequence — seeded simulator runs replay
//! bit-identically with batching on.
//!
//! Metrics caveat: the simulator attributes every send made from a timer
//! callback to its `retransmissions` counter; with `window > 0` flushed
//! envelopes are such sends, so retransmission counts are not meaningful
//! for windowed-batching runs.

use crate::context::{Effects, Protocol, ReadPathStats, TimerCmd, TimerKey};
use crate::types::{Nanos, OpId, ProcessId};
use std::collections::BTreeMap;

/// Timer key reserved for the batching flush timer (`window > 0` only).
/// Protocol phase uids count up from zero, so the key never collides.
pub const FLUSH_KEY: TimerKey = TimerKey(u64::MAX);

/// Wire envelope of a [`Batched`] protocol: one inner message, or several
/// coalesced for the same destination.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Envelope<M> {
    /// A single inner message (no coalescing happened).
    One(M),
    /// Two or more inner messages, delivered in emission order.
    Batch(Vec<M>),
}

impl<M> Envelope<M> {
    /// Number of inner messages carried.
    pub fn len(&self) -> usize {
        match self {
            Envelope::One(_) => 1,
            Envelope::Batch(ms) => ms.len(),
        }
    }

    /// Whether the envelope carries no messages (never produced by
    /// [`Batched`], which only ships non-empty groups).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Wraps a [`Protocol`], coalescing its same-tick sends per peer into
/// [`Envelope`]s. See the module docs for the flushing policies.
///
/// # Examples
///
/// ```
/// use abd_core::batch::{Batched, Envelope};
/// use abd_core::context::{Effects, Protocol};
/// use abd_core::msg::{RegisterOp, RegisterResp};
/// use abd_core::swmr::{SwmrConfig, SwmrNode};
/// use abd_core::types::{OpId, ProcessId};
///
/// let writer = SwmrNode::new(SwmrConfig::new(3, ProcessId(0), ProcessId(0)), 0u32);
/// let mut node = Batched::new(writer, 0);
/// let mut fx = Effects::new();
/// node.on_invoke(OpId(0), RegisterOp::Write(7), &mut fx);
/// // One update per peer; nothing to coalesce, so plain envelopes go out.
/// assert_eq!(fx.sends.len(), 2);
/// assert!(matches!(fx.sends[0].1, Envelope::One(_)));
/// ```
#[derive(Clone, Debug)]
pub struct Batched<P: Protocol> {
    inner: P,
    window: Nanos,
    outbox: Vec<(ProcessId, P::Msg)>,
    armed: bool,
    batches: u64,
    coalesced: u64,
    /// `Some(cap)` switches on load-adaptive window sizing (see
    /// [`Batched::adaptive`]); `None` keeps the window fixed.
    adapt_cap: Option<Nanos>,
}

/// A flush shipping at least this many inner messages doubles an adaptive
/// window — one quorum broadcast's worth: a flush carrying a whole phase
/// fan-out (or more) means the protocol is in its pipelined regime, where
/// windowing converts per-peer singletons into envelopes.
const GROW_LOAD: usize = 4;

/// A flush shipping at most this many inner messages halves an adaptive
/// window (idle: windowing only adds latency).
const SHRINK_LOAD: usize = 1;

impl<P: Protocol> Batched<P> {
    /// Wraps `inner`, flushing with the given `window` (0 = end of every
    /// callback).
    pub fn new(inner: P, window: Nanos) -> Self {
        Batched {
            inner,
            window,
            outbox: Vec::new(),
            armed: false,
            batches: 0,
            coalesced: 0,
            adapt_cap: None,
        }
    }

    /// Wraps `inner` with a load-adaptive flush window bounded by `cap`.
    ///
    /// The window starts at zero (same-tick coalescing) and is resized at
    /// every flush from the number of messages that flush shipped: a batch
    /// of [`GROW_LOAD`] or more doubles the window (starting from
    /// `cap / 8`, never past `cap`); a batch of [`SHRINK_LOAD`] or fewer
    /// halves it, collapsing back to zero below the `cap / 8` floor. Load
    /// counts are derived purely from the inner protocol's emissions, so
    /// the schedule of window sizes — and thus the wire trace — is
    /// deterministic for a seeded run.
    pub fn adaptive(inner: P, cap: Nanos) -> Self {
        assert!(cap > 0, "adaptive window needs a positive cap");
        let mut b = Batched::new(inner, 0);
        b.adapt_cap = Some(cap);
        b
    }

    /// The current flush window (nanoseconds; 0 = flush every callback).
    /// Fixed for [`Batched::new`], load-driven for [`Batched::adaptive`].
    pub fn current_window(&self) -> Nanos {
        self.window
    }

    /// Resizes an adaptive window from the message count of the flush that
    /// just shipped. No-op for fixed-window instances.
    fn adapt(&mut self, load: usize) {
        let Some(cap) = self.adapt_cap else { return };
        let grain = (cap / 8).max(1);
        if load >= GROW_LOAD {
            self.window = (self.window * 2).clamp(grain, cap);
        } else if load <= SHRINK_LOAD {
            // abd-lint: allow(raw-quorum-arith): halving a flush window in
            // nanoseconds — time arithmetic, not a quorum threshold.
            let halved = self.window / 2;
            self.window = if halved < grain { 0 } else { halved };
        }
    }

    /// The wrapped protocol, for inspection.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Envelopes shipped so far (one per `(flush, peer)` with traffic).
    pub fn batches_sent(&self) -> u64 {
        self.batches
    }

    /// Inner messages carried by those envelopes. The difference to
    /// [`batches_sent`](Batched::batches_sent) is the number of network
    /// events batching saved.
    pub fn messages_coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Regroups the outbox per destination and ships one envelope per peer.
    fn flush(&mut self, fx: &mut Effects<Envelope<P::Msg>, P::Resp>) {
        let load = self.outbox.len();
        let mut by_peer: BTreeMap<ProcessId, Vec<P::Msg>> = BTreeMap::new();
        for (to, m) in self.outbox.drain(..) {
            by_peer.entry(to).or_default().push(m);
        }
        for (to, mut msgs) in by_peer {
            self.batches += 1;
            self.coalesced += msgs.len() as u64;
            if msgs.len() == 1 {
                if let Some(m) = msgs.pop() {
                    fx.send(to, Envelope::One(m));
                }
            } else {
                fx.send(to, Envelope::Batch(msgs));
            }
        }
        self.adapt(load);
    }

    /// Moves one inner callback's effects into the host-facing buffer:
    /// timers and responses pass through, sends are buffered and flushed
    /// (window 0) or scheduled for the flush timer (window > 0).
    fn absorb(
        &mut self,
        inner_fx: Effects<P::Msg, P::Resp>,
        fx: &mut Effects<Envelope<P::Msg>, P::Resp>,
    ) {
        for cmd in inner_fx.timers {
            let key = match cmd {
                TimerCmd::Set { key, .. } | TimerCmd::Cancel { key } => key,
            };
            debug_assert!(key != FLUSH_KEY, "inner protocol used the flush key");
            fx.timers.push(cmd);
        }
        for (op, r) in inner_fx.responses {
            fx.respond(op, r);
        }
        self.outbox.extend(inner_fx.sends);
        if self.outbox.is_empty() {
            return;
        }
        if self.window == 0 {
            self.flush(fx);
        } else if !self.armed {
            fx.set_timer(FLUSH_KEY, self.window);
            self.armed = true;
        }
    }
}

impl<P: Protocol> Protocol for Batched<P> {
    type Msg = Envelope<P::Msg>;
    type Op = P::Op;
    type Resp = P::Resp;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_start(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        let mut inner_fx = Effects::new();
        self.inner.on_start(&mut inner_fx);
        self.absorb(inner_fx, fx);
    }

    fn on_invoke(&mut self, op: OpId, input: Self::Op, fx: &mut Effects<Self::Msg, Self::Resp>) {
        let mut inner_fx = Effects::new();
        self.inner.on_invoke(op, input, &mut inner_fx);
        self.absorb(inner_fx, fx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        let mut inner_fx = Effects::new();
        match msg {
            Envelope::One(m) => self.inner.on_message(from, m, &mut inner_fx),
            Envelope::Batch(ms) => {
                for m in ms {
                    self.inner.on_message(from, m, &mut inner_fx);
                }
            }
        }
        self.absorb(inner_fx, fx);
    }

    fn on_timer(&mut self, key: TimerKey, fx: &mut Effects<Self::Msg, Self::Resp>) {
        if key == FLUSH_KEY {
            self.armed = false;
            self.flush(fx);
            return;
        }
        let mut inner_fx = Effects::new();
        self.inner.on_timer(key, &mut inner_fx);
        self.absorb(inner_fx, fx);
    }

    fn on_restart(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        // The outbox and flush timer are volatile; the host already
        // discarded armed timers with the crash. An adaptive window's
        // learned size is equally volatile — restart from same-tick.
        self.outbox.clear();
        self.armed = false;
        if self.adapt_cap.is_some() {
            self.window = 0;
        }
        let mut inner_fx = Effects::new();
        self.inner.on_restart(&mut inner_fx);
        self.absorb(inner_fx, fx);
    }
}

impl<P: Protocol + ReadPathStats> ReadPathStats for Batched<P> {
    fn fast_reads(&self) -> u64 {
        self.inner.fast_reads()
    }

    fn write_backs(&self) -> u64 {
        self.inner.write_backs()
    }

    fn relay_reads(&self) -> u64 {
        self.inner.relay_reads()
    }

    fn sc_reads(&self) -> u64 {
        self.inner.sc_reads()
    }

    fn regular_reads(&self) -> u64 {
        self.inner.regular_reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test protocol: every invocation sends `count` messages to each of
    /// the two peers and responds immediately.
    #[derive(Debug)]
    struct Chatty {
        me: ProcessId,
    }

    impl Protocol for Chatty {
        type Msg = u32;
        type Op = u32;
        type Resp = ();

        fn id(&self) -> ProcessId {
            self.me
        }

        fn on_invoke(&mut self, op: OpId, count: u32, fx: &mut Effects<u32, ()>) {
            for k in 0..count {
                fx.send(ProcessId(1), k);
                fx.send(ProcessId(2), k);
            }
            fx.respond(op, ());
        }

        fn on_message(&mut self, _from: ProcessId, _msg: u32, _fx: &mut Effects<u32, ()>) {}
    }

    #[test]
    fn same_tick_sends_coalesce_per_peer() {
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 0);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 3, &mut fx);
        // Six inner messages become two envelopes, one per peer, in peer
        // order and carrying emission order.
        assert_eq!(fx.sends.len(), 2);
        assert_eq!(fx.sends[0].0, ProcessId(1));
        assert_eq!(fx.sends[0].1, Envelope::Batch(vec![0, 1, 2]));
        assert_eq!(fx.sends[1].0, ProcessId(2));
        assert_eq!(fx.sends[1].1, Envelope::Batch(vec![0, 1, 2]));
        assert_eq!(fx.responses.len(), 1, "responses pass through");
        assert_eq!(node.batches_sent(), 2);
        assert_eq!(node.messages_coalesced(), 6);
    }

    #[test]
    fn single_messages_ship_unbatched() {
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 0);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 1, &mut fx);
        assert_eq!(fx.sends.len(), 2);
        assert!(matches!(fx.sends[0].1, Envelope::One(0)));
    }

    #[test]
    fn windowed_batching_holds_until_flush_timer() {
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 500);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 1, &mut fx);
        node.on_invoke(OpId(1), 1, &mut fx);
        assert!(fx.sends.is_empty(), "sends held for the window");
        // First buffered send armed the flush timer, exactly once.
        let sets = fx
            .timers
            .iter()
            .filter(|t| matches!(t, TimerCmd::Set { key, .. } if *key == FLUSH_KEY))
            .count();
        assert_eq!(sets, 1);

        let mut flush_fx = Effects::new();
        node.on_timer(FLUSH_KEY, &mut flush_fx);
        assert_eq!(flush_fx.sends.len(), 2);
        assert_eq!(flush_fx.sends[0].1, Envelope::Batch(vec![0, 0]));
    }

    #[test]
    fn windowed_flush_preserves_cross_callback_emission_order() {
        // Two invocations land inside one window; the flushed envelope must
        // carry both callbacks' messages in exact emission order, not
        // regrouped or deduplicated.
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 500);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 2, &mut fx);
        node.on_invoke(OpId(1), 3, &mut fx);
        assert!(fx.sends.is_empty(), "both callbacks' sends held back");

        let mut flush_fx = Effects::new();
        node.on_timer(FLUSH_KEY, &mut flush_fx);
        assert_eq!(flush_fx.sends.len(), 2);
        assert_eq!(flush_fx.sends[0].0, ProcessId(1));
        assert_eq!(flush_fx.sends[0].1, Envelope::Batch(vec![0, 1, 0, 1, 2]));
        assert_eq!(flush_fx.sends[1].0, ProcessId(2));
        assert_eq!(flush_fx.sends[1].1, Envelope::Batch(vec![0, 1, 0, 1, 2]));
        assert_eq!(node.batches_sent(), 2);
        assert_eq!(node.messages_coalesced(), 10);
    }

    #[test]
    fn window_rearms_once_per_flush_cycle() {
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 500);
        let arm_count = |fx: &Effects<Envelope<u32>, ()>| {
            fx.timers
                .iter()
                .filter(|t| matches!(t, TimerCmd::Set { key, .. } if *key == FLUSH_KEY))
                .count()
        };
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 1, &mut fx);
        node.on_invoke(OpId(1), 1, &mut fx);
        assert_eq!(arm_count(&fx), 1, "one timer per window, not per send");

        let mut flush_fx = Effects::new();
        node.on_timer(FLUSH_KEY, &mut flush_fx);
        // The next buffered send after a flush opens a fresh window.
        let mut fx2 = Effects::new();
        node.on_invoke(OpId(2), 1, &mut fx2);
        assert_eq!(arm_count(&fx2), 1, "flush re-enables arming");
    }

    /// An inner protocol must never use the reserved flush key: phase uids
    /// count up from zero and cannot reach `u64::MAX`, and a wrapped timer
    /// on that key would be swallowed by the batching layer as a flush.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "inner protocol used the flush key")]
    fn inner_timer_on_the_reserved_flush_key_is_rejected() {
        #[derive(Debug)]
        struct Clash;
        impl Protocol for Clash {
            type Msg = u32;
            type Op = ();
            type Resp = ();
            fn id(&self) -> ProcessId {
                ProcessId(0)
            }
            fn on_invoke(&mut self, _op: OpId, _i: (), fx: &mut Effects<u32, ()>) {
                fx.set_timer(FLUSH_KEY, 10);
            }
            fn on_message(&mut self, _from: ProcessId, _msg: u32, _fx: &mut Effects<u32, ()>) {}
        }
        let mut node = Batched::new(Clash, 0);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), (), &mut fx);
    }

    #[test]
    fn batch_delivery_unpacks_in_order() {
        #[derive(Debug, Default)]
        struct Recorder {
            seen: Vec<u32>,
        }
        impl Protocol for Recorder {
            type Msg = u32;
            type Op = ();
            type Resp = ();
            fn id(&self) -> ProcessId {
                ProcessId(0)
            }
            fn on_invoke(&mut self, _op: OpId, _i: (), _fx: &mut Effects<u32, ()>) {}
            fn on_message(&mut self, _from: ProcessId, msg: u32, _fx: &mut Effects<u32, ()>) {
                self.seen.push(msg);
            }
        }
        let mut node = Batched::new(Recorder::default(), 0);
        let mut fx = Effects::new();
        node.on_message(ProcessId(1), Envelope::Batch(vec![5, 6, 7]), &mut fx);
        node.on_message(ProcessId(1), Envelope::One(8), &mut fx);
        assert_eq!(node.inner().seen, vec![5, 6, 7, 8]);
    }

    #[test]
    fn restart_drops_buffered_sends() {
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 500);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 2, &mut fx);
        assert!(fx.sends.is_empty());
        let mut restart_fx = Effects::new();
        node.on_restart(&mut restart_fx);
        assert!(restart_fx.sends.is_empty(), "outbox wiped with the crash");
        let mut flush_fx = Effects::new();
        node.on_timer(FLUSH_KEY, &mut flush_fx);
        assert!(flush_fx.sends.is_empty(), "nothing left to flush");

        // The arming flag was volatile too: post-restart traffic opens a
        // fresh window instead of waiting on a timer the crash discarded.
        let mut fx2 = Effects::new();
        node.on_invoke(OpId(1), 1, &mut fx2);
        assert!(
            fx2.timers
                .iter()
                .any(|t| matches!(t, TimerCmd::Set { key, .. } if *key == FLUSH_KEY)),
            "restart must reset the window arming"
        );
        let mut flush_fx = Effects::new();
        node.on_timer(FLUSH_KEY, &mut flush_fx);
        assert_eq!(flush_fx.sends.len(), 2, "only post-restart sends flush");
        assert!(matches!(flush_fx.sends[0].1, Envelope::One(0)));
    }

    #[test]
    fn adaptive_window_grows_under_queue_pressure() {
        let mut node = Batched::adaptive(Chatty { me: ProcessId(0) }, 800);
        assert_eq!(node.current_window(), 0, "adaptive starts at same-tick");

        // A heavy callback (8 messages >= GROW_LOAD) flushes inline and
        // opens a window at the cap/8 grain.
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 4, &mut fx);
        assert_eq!(fx.sends.len(), 2, "window was 0: flushed this tick");
        assert_eq!(node.current_window(), 100);

        // Pressure sustained across flush cycles keeps doubling to the cap.
        for op in 1..5u64 {
            let mut fx = Effects::new();
            node.on_invoke(OpId(op), 4, &mut fx);
            assert!(fx.sends.is_empty(), "window open: sends held");
            let mut flush_fx = Effects::new();
            node.on_timer(FLUSH_KEY, &mut flush_fx);
            assert!(!flush_fx.sends.is_empty());
        }
        assert_eq!(node.current_window(), 800, "clamped at the cap");
    }

    #[test]
    fn adaptive_window_shrinks_back_to_same_tick_when_idle() {
        let mut node = Batched::adaptive(Chatty { me: ProcessId(0) }, 800);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 4, &mut fx);
        let mut fx = Effects::new();
        node.on_invoke(OpId(1), 4, &mut fx);
        node.on_timer(FLUSH_KEY, &mut Effects::new());
        assert_eq!(node.current_window(), 200);

        // A light flush (two buffered messages, between the thresholds)
        // leaves the window alone.
        let mut fx = Effects::new();
        node.on_invoke(OpId(2), 1, &mut fx);
        node.on_timer(FLUSH_KEY, &mut Effects::new());
        assert_eq!(node.current_window(), 200, "load 2 is between thresholds");

        // Single-message flushes halve it; below the grain it collapses to
        // zero — back to the same-tick policy, no timers armed.
        node.adapt(1);
        assert_eq!(node.current_window(), 100);
        node.adapt(0);
        assert_eq!(node.current_window(), 0, "below the grain -> same-tick");

        let mut fx = Effects::new();
        node.on_invoke(OpId(3), 1, &mut fx);
        assert_eq!(fx.sends.len(), 2, "collapsed window flushes this tick");
        assert_eq!(node.current_window(), 0, "stays collapsed while idle");
    }

    #[test]
    fn adaptive_window_resets_on_restart() {
        let mut node = Batched::adaptive(Chatty { me: ProcessId(0) }, 800);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 4, &mut fx);
        assert_eq!(node.current_window(), 100);
        node.on_restart(&mut Effects::new());
        assert_eq!(node.current_window(), 0, "learned window is volatile");
    }

    #[test]
    fn adaptive_restart_wipes_outbox_and_relearns_from_same_tick() {
        // The full crash/restart path for an adaptive instance: a grown
        // window with traffic buffered behind an armed flush timer loses
        // everything volatile at once — outbox, arming flag, learned
        // window — and the reborn node behaves exactly like a fresh
        // `adaptive` wrapper until load re-teaches it.
        let mut node = Batched::adaptive(Chatty { me: ProcessId(0) }, 800);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 4, &mut fx);
        assert_eq!(node.current_window(), 100, "heavy flush opened a window");
        let shipped_before = node.batches_sent();

        // Buffer traffic inside the open window (armed, held back).
        let mut fx = Effects::new();
        node.on_invoke(OpId(1), 4, &mut fx);
        assert!(fx.sends.is_empty(), "window open: sends held");

        let mut restart_fx = Effects::new();
        node.on_restart(&mut restart_fx);
        assert!(restart_fx.sends.is_empty(), "outbox died with the crash");
        assert_eq!(node.current_window(), 0, "window relearns from idle");

        // A straggler flush timer the host failed to discard must find an
        // empty outbox and must not disturb the collapsed window.
        let mut stale_fx = Effects::new();
        node.on_timer(FLUSH_KEY, &mut stale_fx);
        assert!(stale_fx.sends.is_empty(), "nothing survived to flush");
        assert_eq!(node.current_window(), 0);
        assert_eq!(node.batches_sent(), shipped_before, "no phantom envelopes");

        // Post-restart traffic ships same-tick — no latency tax from a
        // window learned in a previous life.
        let mut fx = Effects::new();
        node.on_invoke(OpId(2), 1, &mut fx);
        assert_eq!(fx.sends.len(), 2, "same-tick policy after restart");
        assert!(matches!(fx.sends[0].1, Envelope::One(0)));

        // And sustained pressure re-teaches the window from scratch.
        let mut fx = Effects::new();
        node.on_invoke(OpId(3), 4, &mut fx);
        assert_eq!(fx.sends.len(), 2, "window was 0: flushed this tick");
        assert_eq!(node.current_window(), 100, "relearned the grain window");
    }

    #[test]
    fn fixed_window_never_adapts() {
        let mut node = Batched::new(Chatty { me: ProcessId(0) }, 500);
        let mut fx = Effects::new();
        node.on_invoke(OpId(0), 8, &mut fx);
        node.on_timer(FLUSH_KEY, &mut Effects::new());
        assert_eq!(node.current_window(), 500, "Batched::new keeps its window");
    }

    #[test]
    fn envelope_len_counts_inner_messages() {
        assert_eq!(Envelope::One(1u8).len(), 1);
        assert!(!Envelope::One(1u8).is_empty());
        assert_eq!(Envelope::Batch(vec![1u8, 2, 3]).len(), 3);
    }
}
