//! Deterministic Merkle digests over a replica's `(key → tag)` map.
//!
//! ABD crash recovery and anti-entropy both need to answer one question
//! cheaply: *where do two replicas disagree?* A replica's store is a map
//! from keys to [`Tag`]s (the values ride along but the tags decide
//! freshness — adoption is monotone in the tag, see the `abd-kv` module
//! docs). This module maintains a compact digest tree over that map:
//!
//! * keys hash (via [`key_hash`], a self-contained FNV-1a so the digest is
//!   identical across runs, platforms and `std` versions) into one of `B`
//!   **buckets** (`B` a power of two);
//! * a bucket's digest is the **XOR** of its entries' digests, where an
//!   entry digest mixes the key hash with the tag — XOR makes every
//!   mutation an O(1) incremental delta instead of a bucket rescan;
//! * buckets are the leaves of a complete binary tree stored as a heap
//!   array (node `0` is the root, node `i`'s children are `2i + 1` and
//!   `2i + 2`); an internal node's digest is the XOR of its children, so a
//!   leaf delta propagates to the root in `log₂ B` XORs.
//!
//! Two replicas with equal subtree digests hold (up to 64-bit hash
//! collisions) the same `(key, tag)` set under that subtree, so a sync can
//! prune the subtree entirely; a mismatch narrows the divergence by half
//! per level. That is what makes recovery traffic proportional to *drift*
//! rather than store size (see DESIGN.md §15 for the safety argument and
//! the collision caveat).
//!
//! The tree has exactly **one** mutating operation,
//! [`MerkleTree::apply_delta`]. Callers outside this module must route
//! every call through their single `digest_update` helper so the digest
//! can never silently diverge from the store it summarizes — enforced by
//! `abd-lint`'s `merkle-digest-helper` rule.

use crate::types::Tag;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A self-contained FNV-1a [`std::hash::Hasher`].
///
/// `std`'s `DefaultHasher` is explicitly unstable across releases, and the
/// sync protocol compares digests *between* replicas, so key hashing must
/// be pinned down to the byte. Multi-byte writes are folded little-endian
/// (and `usize` as `u64`) so the digest is also architecture-independent.
#[derive(Clone, Debug)]
pub struct FnvHasher(u64);

impl FnvHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher::new()
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write(&[n]);
    }

    fn write_u16(&mut self, n: u16) {
        self.write(&n.to_le_bytes());
    }

    fn write_u32(&mut self, n: u32) {
        self.write(&n.to_le_bytes());
    }

    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    fn write_u128(&mut self, n: u128) {
        self.write(&n.to_le_bytes());
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_i8(&mut self, n: i8) {
        self.write_u8(n as u8);
    }

    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    fn write_i128(&mut self, n: i128) {
        self.write_u128(n as u128);
    }

    fn write_isize(&mut self, n: isize) {
        self.write_u64(n as u64);
    }
}

/// Deterministic 64-bit hash of a key, identical across runs and
/// platforms. This is the only key-hashing entry point the sync protocol
/// uses; replicas must agree on it bit for bit.
pub fn key_hash<K: std::hash::Hash + ?Sized>(key: &K) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FnvHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Digest of one `(key, tag)` entry: FNV-1a over the key hash and both
/// tag components. The XOR-accumulated bucket digest needs every entry's
/// digest to be (pseudo)independent of the others', which re-hashing the
/// concatenation provides.
fn entry_digest(kh: u64, tag: Tag) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FnvHasher::new();
    h.write_u64(kh);
    h.write_u64(tag.seq);
    h.write_u64(tag.writer.index() as u64);
    h.finish()
}

/// Incremental Merkle digest tree over a `(key → tag)` map.
///
/// # Examples
///
/// ```
/// use abd_core::merkle::{key_hash, MerkleTree};
/// use abd_core::types::{ProcessId, Tag};
///
/// let mut a = MerkleTree::new(8);
/// let mut b = MerkleTree::new(8);
/// assert_eq!(a.root(), b.root());
///
/// let t = Tag::new(1, ProcessId(0));
/// a.apply_delta(key_hash(&"k"), None, Some(t));
/// assert_ne!(a.root(), b.root());
///
/// // Replaying the same mutation converges the digests again.
/// b.apply_delta(key_hash(&"k"), None, Some(t));
/// assert_eq!(a.root(), b.root());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// Number of leaf buckets; a power of two.
    leaf_count: usize,
    /// Heap-array digests: `2 * leaf_count - 1` nodes, root at index 0,
    /// leaves at `leaf_count - 1 ..`.
    nodes: Vec<u64>,
}

impl MerkleTree {
    /// An empty tree over `leaf_count` buckets (must be a power of two).
    /// Every digest starts at 0, the XOR identity, so two empty trees are
    /// equal and a tree rebuilt entry by entry matches one maintained
    /// incrementally.
    pub fn new(leaf_count: usize) -> Self {
        assert!(
            leaf_count.is_power_of_two(),
            "bucket count must be a power of two"
        );
        MerkleTree {
            leaf_count,
            nodes: vec![0; 2 * leaf_count - 1],
        }
    }

    /// Number of leaf buckets.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Total number of tree nodes (`2 * leaf_count - 1`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root digest: equal roots mean (modulo 64-bit collisions) equal
    /// `(key, tag)` maps.
    pub fn root(&self) -> u64 {
        self.nodes[0]
    }

    /// Digest of tree node `id`, or `None` if `id` is out of range —
    /// sync peers treat malformed node ids as a no-op, never a panic.
    pub fn digest(&self, id: u32) -> Option<u64> {
        self.nodes.get(id as usize).copied()
    }

    /// Whether node `id` is a leaf (a bucket).
    pub fn is_leaf(&self, id: u32) -> bool {
        (id as usize) >= self.leaf_count - 1
    }

    /// The two children of internal node `id`, or `None` for leaves and
    /// out-of-range ids.
    pub fn children(&self, id: u32) -> Option<(u32, u32)> {
        let i = id as usize;
        if i >= self.nodes.len() || self.is_leaf(id) {
            return None;
        }
        Some((2 * id + 1, 2 * id + 2))
    }

    /// The bucket index a key hash falls into.
    pub fn bucket_of(&self, kh: u64) -> usize {
        (kh & (self.leaf_count as u64 - 1)) as usize
    }

    /// The tree node id of bucket `bucket`.
    pub fn leaf_id(&self, bucket: usize) -> u32 {
        debug_assert!(bucket < self.leaf_count);
        (self.leaf_count - 1 + bucket) as u32
    }

    /// The bucket index of leaf node `id`, or `None` for internal or
    /// out-of-range ids.
    pub fn bucket_of_leaf(&self, id: u32) -> Option<usize> {
        let i = id as usize;
        (i >= self.leaf_count - 1 && i < self.nodes.len()).then(|| i - (self.leaf_count - 1))
    }

    /// The **single mutating operation**: the entry for the key hashing to
    /// `kh` changed from tag `old` (`None` = absent) to `new` (`None` =
    /// removed). XORs the entry-digest delta into the key's bucket and
    /// every ancestor up to the root — O(log₂ buckets), no rescans.
    ///
    /// Callers outside `merkle.rs` must wrap this in their one
    /// `digest_update` helper (the `merkle-digest-helper` lint rule flags
    /// any other call site): the tree is an index over the store, and an
    /// unpaired mutation silently corrupts every digest above the bucket.
    pub fn apply_delta(&mut self, kh: u64, old: Option<Tag>, new: Option<Tag>) {
        let mut delta = 0u64;
        if let Some(t) = old {
            delta ^= entry_digest(kh, t);
        }
        if let Some(t) = new {
            delta ^= entry_digest(kh, t);
        }
        let mut i = self.leaf_id(self.bucket_of(kh)) as usize;
        loop {
            self.nodes[i] ^= delta;
            if i == 0 {
                break;
            }
            i = (i - 1) >> 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ProcessId;

    fn tag(seq: u64, w: usize) -> Tag {
        Tag::new(seq, ProcessId(w))
    }

    /// Rebuild a tree from scratch over `entries`.
    fn build(leaves: usize, entries: &[(&str, Tag)]) -> MerkleTree {
        let mut t = MerkleTree::new(leaves);
        for (k, tg) in entries {
            t.apply_delta(key_hash(k), None, Some(*tg));
        }
        t
    }

    #[test]
    fn empty_trees_agree_and_root_is_zero() {
        let a = MerkleTree::new(16);
        let b = MerkleTree::new(16);
        assert_eq!(a.root(), 0);
        assert_eq!(a, b);
        assert_eq!(a.node_count(), 31);
    }

    #[test]
    fn key_hash_is_deterministic_and_spreads() {
        assert_eq!(key_hash(&42u32), key_hash(&42u32));
        assert_ne!(key_hash(&42u32), key_hash(&43u32));
        // A realistic keyspace spreads over all buckets of a small tree.
        let t = MerkleTree::new(8);
        let hit: std::collections::BTreeSet<usize> =
            (0..64u32).map(|k| t.bucket_of(key_hash(&k))).collect();
        assert_eq!(hit.len(), 8, "64 keys must touch all 8 buckets");
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let e = [("a", tag(1, 0)), ("b", tag(2, 1)), ("c", tag(7, 2))];
        let mut rev = e;
        rev.reverse();
        assert_eq!(build(8, &e), build(8, &rev));
    }

    #[test]
    fn tag_bump_equals_rebuild() {
        let mut inc = build(8, &[("a", tag(1, 0)), ("b", tag(1, 1))]);
        inc.apply_delta(key_hash("a"), Some(tag(1, 0)), Some(tag(5, 2)));
        let scratch = build(8, &[("a", tag(5, 2)), ("b", tag(1, 1))]);
        assert_eq!(inc, scratch);
    }

    #[test]
    fn removal_restores_the_prior_digest() {
        let before = build(8, &[("a", tag(1, 0))]);
        let mut t = build(8, &[("a", tag(1, 0))]);
        t.apply_delta(key_hash("b"), None, Some(tag(3, 1)));
        assert_ne!(t, before);
        t.apply_delta(key_hash("b"), Some(tag(3, 1)), None);
        assert_eq!(t, before);
    }

    #[test]
    fn divergence_is_visible_on_the_leaf_path_only() {
        let a = build(64, &[("x", tag(1, 0)), ("y", tag(1, 0))]);
        let b = build(64, &[("x", tag(2, 1)), ("y", tag(1, 0))]);
        // Roots differ; walking mismatching children reaches exactly the
        // leaf holding "x", with every other subtree pruned by equality.
        assert_ne!(a.root(), b.root());
        let mut frontier = vec![0u32];
        let mut mismatched_leaves = Vec::new();
        while let Some(id) = frontier.pop() {
            if a.digest(id) == b.digest(id) {
                continue;
            }
            match a.children(id) {
                Some((l, r)) => frontier.extend([l, r]),
                None => mismatched_leaves.push(id),
            }
        }
        let xb = a.bucket_of(key_hash("x"));
        let yb = a.bucket_of(key_hash("y"));
        assert_ne!(xb, yb, "test keys must land in distinct buckets");
        assert_eq!(mismatched_leaves, vec![a.leaf_id(xb)]);
    }

    #[test]
    fn topology_accessors_agree() {
        let t = MerkleTree::new(4); // nodes 0..=6, leaves 3..=6
        assert!(!t.is_leaf(0));
        assert_eq!(t.children(0), Some((1, 2)));
        assert_eq!(t.children(1), Some((3, 4)));
        assert!(t.is_leaf(3) && t.is_leaf(6));
        assert_eq!(t.children(3), None);
        assert_eq!(t.children(99), None);
        assert_eq!(t.digest(99), None);
        assert_eq!(t.bucket_of_leaf(3), Some(0));
        assert_eq!(t.bucket_of_leaf(6), Some(3));
        assert_eq!(t.bucket_of_leaf(2), None);
        assert_eq!(t.bucket_of_leaf(7), None);
        for b in 0..4 {
            assert_eq!(t.bucket_of_leaf(t.leaf_id(b)), Some(b));
        }
    }

    #[test]
    fn single_bucket_tree_degenerates_to_a_set_digest() {
        let mut t = MerkleTree::new(1);
        assert_eq!(t.node_count(), 1);
        assert!(t.is_leaf(0));
        t.apply_delta(key_hash("a"), None, Some(tag(1, 0)));
        assert_ne!(t.root(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bucket_count_is_rejected() {
        let _ = MerkleTree::new(6);
    }
}
