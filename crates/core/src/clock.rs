//! Injected time sources.
//!
//! The protocol state machines themselves never read a clock — they see
//! time only as [`TimerCmd`](crate::context::TimerCmd) deadlines handed to
//! whatever drives them. The *drivers*, however, need a notion of "now":
//! the simulator has its virtual clock, and the thread runtime used to call
//! `Instant::now()` wherever it pleased, which made its timing untestable
//! and scattered wall-clock reads across the codebase (flagged by
//! `abd-lint` rule `wall-clock`).
//!
//! This module is the choke point: drivers take a [`Clock`] and every
//! deadline computation goes through it. The deterministic implementations
//! live here; the one wall-clock implementation
//! (`abd_runtime::clock::MonotonicClock`) lives in the runtime crate and is
//! the single allow-listed `Instant` site in the workspace.

use crate::types::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone source of nanosecond timestamps, relative to its own epoch.
///
/// Implementations must be monotone (`now()` never decreases) and cheap —
/// drivers consult the clock on every loop iteration.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now(&self) -> Nanos;
}

/// A clock that only moves when told to — for tests that want to step
/// time-dependent code deterministically.
///
/// Shared freely across threads; [`advance`](ManualClock::advance) and
/// [`set`](ManualClock::set) are atomic.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `delta` nanoseconds.
    pub fn advance(&self, delta: Nanos) {
        self.now.fetch_add(delta, Ordering::SeqCst);
    }

    /// Jumps the clock to `at` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — a [`Clock`] must
    /// stay monotone.
    pub fn set(&self, at: Nanos) {
        let prev = self.now.swap(at, Ordering::SeqCst);
        assert!(
            prev <= at,
            "ManualClock::set({at}) would move time backwards from {prev}"
        );
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Nanos {
        self.now.load(Ordering::SeqCst)
    }
}

/// A strictly increasing tick counter usable as a timebase for concurrent
/// histories.
///
/// Every `now()` call returns a fresh, strictly larger value, so if
/// operation A completes before operation B begins in real time, A's end
/// tick is smaller than B's start tick — exactly the precedence structure
/// linearizability checking needs, without reading a wall clock.
#[derive(Debug, Default)]
pub struct TickClock {
    next: AtomicU64,
}

impl TickClock {
    /// A tick clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Clock for TickClock {
    fn now(&self) -> Nanos {
        self.next.fetch_add(1, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(5);
        c.advance(10);
        assert_eq!(c.now(), 15);
        c.set(40);
        assert_eq!(c.now(), 40);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let c = ManualClock::new();
        c.set(10);
        c.set(5);
    }

    #[test]
    fn tick_clock_is_strictly_monotone_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(TickClock::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.now()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Nanos> = Vec::new();
        for j in joins {
            let ticks = j.join().expect("tick thread panicked");
            assert!(ticks.windows(2).all(|w| w[0] < w[1]));
            all.extend(ticks);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "ticks must be globally unique");
    }
}
