//! # abd-core — Sharing Memory Robustly in Message-Passing Systems
//!
//! A from-scratch implementation of the **ABD emulation** (Attiya, Bar-Noy,
//! Dolev; PODC 1990 / JACM 1995): wait-free **atomic read/write registers**
//! on top of an asynchronous message-passing system in which any **minority
//! of processors may crash**.
//!
//! The crate provides:
//!
//! * the **single-writer** protocol of the paper ([`swmr`]) and the
//!   **multi-writer** extension ([`mwmr`]), both with unbounded timestamps;
//! * the **bounded-timestamp** variant ([`bounded`]), the part of the
//!   journal paper devoted to recycling labels from a finite pool;
//! * explicit **quorum systems** ([`quorum`]) generalizing the paper's
//!   majorities (thresholds, weighted voting, grids);
//! * the **regular / read-one baselines** ([`presets`]) whose anomalies the
//!   experiments exhibit.
//!
//! Protocols are **sans-io state machines** ([`context::Protocol`]): the
//! deterministic simulator (`abd-simnet`) and the thread runtime
//! (`abd-runtime`) both drive the exact same code.
//!
//! ## Quickstart
//!
//! Drive a three-node cluster by hand (real hosts do this for you):
//!
//! ```
//! use abd_core::context::{Effects, Protocol};
//! use abd_core::msg::{RegisterOp, RegisterResp};
//! use abd_core::swmr::{SwmrConfig, SwmrNode};
//! use abd_core::types::{OpId, ProcessId};
//!
//! // Three nodes; p0 is the writer.
//! let mut nodes: Vec<SwmrNode<u64>> = (0..3)
//!     .map(|i| SwmrNode::new(SwmrConfig::new(3, ProcessId(i), ProcessId(0)), 0))
//!     .collect();
//!
//! // p0 invokes Write(7): it broadcasts an update to p1 and p2.
//! let mut fx = Effects::new();
//! nodes[0].on_invoke(OpId(1), RegisterOp::Write(7), &mut fx);
//! assert_eq!(fx.sends.len(), 2);
//!
//! // Deliver the update to p1 and route its ack back: quorum {p0, p1}.
//! let (_, update) = fx.sends[0].clone();
//! let mut fx1 = Effects::new();
//! nodes[1].on_message(ProcessId(0), update, &mut fx1);
//! let (_, ack) = fx1.sends[0].clone();
//! let mut fx0 = Effects::new();
//! nodes[0].on_message(ProcessId(1), ack, &mut fx0);
//! assert_eq!(fx0.responses, vec![(OpId(1), RegisterResp::WriteOk)]);
//! ```
//!
//! ## Map of the construction
//!
//! | paper concept | here |
//! |---------------|------|
//! | replicated `(label, value)` pairs | [`replica::Replica`] |
//! | "wait for a majority" | [`phase::PhaseTracker`] + [`quorum::QuorumSystem`] |
//! | write / query / write-back messages | [`msg::RegisterMsg`] |
//! | single-writer emulation | [`swmr::SwmrNode`] |
//! | multi-writer extension | [`mwmr::MwmrNode`] |
//! | bounded timestamps | [`bounded`] |

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batch;
pub mod bounded;
pub mod byzantine;
pub mod clock;
pub mod context;
pub mod merkle;
pub mod msg;
pub mod mwmr;
pub mod phase;
pub mod presets;
pub mod procset;
pub mod quorum;
pub mod replica;
pub mod retransmit;
pub mod swmr;
pub mod types;

#[cfg(test)]
pub(crate) mod testutil;

pub use batch::{Batched, Envelope};
pub use context::{Effects, Protocol, ReadPathStats, TimerCmd, TimerKey};
pub use merkle::{key_hash, MerkleTree};
pub use msg::{RegisterMsg, RegisterOp, RegisterResp};
pub use mwmr::{MwmrConfig, MwmrNode};
pub use procset::ProcSet;
pub use quorum::{Grid, Majority, QuorumSystem, Threshold, Weighted};
pub use retransmit::{BackoffPolicy, Retransmitter};
pub use swmr::{SwmrConfig, SwmrNode};
pub use types::{Nanos, OpId, ProcessId, ReadMode, RegisterError, SeqNo, Tag};
