//! The single-writer multi-reader (SWMR) atomic register emulation — the
//! core construction of the paper, with unbounded integer timestamps.
//!
//! One designated processor is the *writer*; every processor may read. Each
//! processor also plays the replica role for the register.
//!
//! * **Write(v)** — the writer increments its sequence number, adopts
//!   `(seq, v)` locally, broadcasts `Update(seq, v)` and returns once a
//!   *write quorum* (a majority, in the paper) has acknowledged. One round
//!   trip, `2(n−1)` messages.
//! * **Read()** — the reader broadcasts `Query`, waits for a *read quorum*
//!   of `(label, value)` replies (counting its own replica), selects the
//!   pair with the **largest label**, and then — the paper's key move —
//!   performs a **write-back**: it propagates that pair with `Update` and
//!   waits for a write quorum of acknowledgements *before* returning the
//!   value. Two round trips, `4(n−1)` messages.
//!
//! The write-back is what upgrades *regularity* to *atomicity*: once a read
//! returns `v`, a write quorum stores a label `≥ label(v)`, so every later
//! read's query quorum intersects it and cannot return an older value (no
//! "new/old inversion"). Setting
//! [`read_write_back`](SwmrConfig::read_write_back) to `false` yields
//! exactly the regular-register baseline whose violations experiment **T5**
//! exhibits.
//!
//! With [`ReadMode::FastUnanimous`](crate::types::ReadMode) selected, a
//! read whose query quorum was **unanimous** about the maximum label *and*
//! itself forms a write quorum skips the write-back — it would only
//! re-install a label already held by a write quorum (see
//! [`fast_read_allowed`](crate::quorum::fast_read_allowed)). On the
//! uncontended common path this halves the read to one round, `2(n−1)`
//! messages; any disagreement falls back to the two-phase path, so
//! atomicity is unaffected (experiment **F6**).
//!
//! ## Relay reads
//!
//! With [`ReadMode::Relay`](crate::types::ReadMode) the read path changes
//! shape entirely (after "Oh-RAM! One and a Half Round Atomic Memory",
//! Hadjistasi–Nicolaou–Schwarzmann): the reader broadcasts `RelayQuery`
//! carrying its own replica snapshot; every server forwards its snapshot to
//! every other server (`RelayFwd`, adopting the maxima it sees along the
//! way); once a server's forwards cover a **read quorum** it sends its
//! replica directly to the reader (`RelayReply`); the reader completes when
//! a **write quorum** of servers has replied, returning the value of the
//! **minimum** reply label — no write-back. Three one-way message delays
//! (query → forward → reply) instead of four, for every read, contended or
//! not, at a cost of `n² − 1` messages per read.
//!
//! Why the *minimum* is the safe choice: a replier adopts the maximum of a
//! read quorum of forwards — all sent after the read began — before
//! replying, so every reply label is ≥ every previously completed write's
//! label; and unlike the maximum, the minimum is *persisted at every
//! replier* (a write quorum) before any reply is sent, so a later read's
//! forward quorums intersect it and can only report labels ≥ it. Returning
//! the maximum instead would be unsound: that label may sit on a single
//! server, and a later read could miss it — a new/old inversion.
//!
//! The state machine is sans-io (see [`crate::context`]): hosts deliver
//! messages and timer ticks, and carry out the recorded effects. With a
//! retransmission policy configured, an unfinished phase resends — with
//! exponential backoff and deterministic jitter, only to the processors
//! that have not yet responded ([`crate::retransmit`]) — which makes the
//! emulation live over fair-lossy links (experiment **F3**).
//!
//! ## Crash recovery
//!
//! A restarted node ([`Protocol::on_restart`]) loses its volatile state —
//! the in-flight operation, queued invocations, retry schedule — but its
//! replica pair `(label, value)`, the writer's sequence number and the
//! phase-uid counter model **stable storage** and survive. This is not an
//! optimization but a soundness requirement: if an acknowledgement could
//! outlive the replica state it acknowledged, a write quorum would no
//! longer guarantee that its labels persist. Concretely, with full amnesia:
//! the writer collects `p`'s ack for label 5, `p` crashes and rejoins
//! having caught up from a stale majority at label 4, and a later read
//! whose quorum intersects the write quorum only at `p` returns the old
//! value — a new/old inversion. Persisting the pair (as a real deployment
//! would, via an fsync before the ack) restores the quorum-intersection
//! argument; the catch-up **query phase** the node runs before serving
//! again is then purely a freshness optimization that lets it answer with
//! recent labels immediately.
//!
//! ### The aborted-write epilogue
//!
//! A writer that crashes mid-write leaves its client's operation aborted:
//! the update may sit at any subset of replicas, an open-ended interval a
//! checker must treat as "possibly took effect". With
//! [`write_epilogue`](SwmrConfig::write_epilogue) enabled, the writer also
//! persists its *write intent* `(op, seq, value)` alongside the replica
//! pair, and on restart — after the catch-up query completes — rolls the
//! interrupted write forward: it re-broadcasts `Update(seq, value)` with a
//! fresh phase uid and acknowledges the client once a write quorum holds
//! the label. Roll-forward (rather than abort) is the only sound
//! resolution for a SWMR register: the writer's own replica adopted
//! `(seq, value)` *before* the broadcast, so the persisted pair already
//! carries the label — the catch-up query can only confirm it, never
//! exceed it, and re-propagating it is idempotent. The flag is off by
//! default so the baseline abort semantics (and pinned simulation traces)
//! are unchanged.

// The declared phase graph, checked by abd-lint's `phase-graph` rule
// against the graph extracted from the handler bodies below. `Query ->
// WriteBack` (never the reverse) encodes "query precedes write-back";
// `Restart -> Recovery -> Idle` encodes "a restarted node re-enters the
// catch-up query before serving". `Invoke -> Write/WriteBack/Done` are the
// instant-quorum short-circuits (single-node clusters complete in place).
// `Idle -> Write` and `Restart -> Write` are the aborted-write epilogue:
// once catch-up completes (or is unnecessary because the node alone forms
// a read quorum), a crash-interrupted write resumes as a fresh Write phase.
// `Invoke -> RelayRead` and `RelayRead -> Done` are the relay read mode:
// the reader parks in a single RelayRead phase and completes on a write
// quorum of direct server replies.
// abd-lint: phase-spec(swmr):
//   Invoke -> Query, Invoke -> Write, Invoke -> WriteBack, Invoke -> Done,
//   Invoke -> RelayRead, RelayRead -> Done,
//   Query -> WriteBack, Query -> Done,
//   Write -> Done, WriteBack -> Done,
//   Restart -> Recovery, Recovery -> Idle,
//   Idle -> Write, Restart -> Write

use crate::context::{Effects, Protocol, ReadPathStats, TimerKey};
use crate::msg::{RegisterMsg, RegisterOp, RegisterResp};
use crate::phase::{PhaseTracker, RelayCensus, TagCensus};
use crate::procset::ProcSet;
use crate::quorum::{fast_read_allowed, Majority, QuorumSystem};
use crate::replica::Replica;
use crate::retransmit::{BackoffPolicy, Retransmitter};
use crate::types::{Consistency, Nanos, OpId, ProcessId, ReadMode, RegisterError, SeqNo};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Wire message of the SWMR protocol.
pub type SwmrMsg<V> = RegisterMsg<SeqNo, V>;

/// Configuration of one SWMR node.
#[derive(Clone, Debug)]
pub struct SwmrConfig {
    /// Cluster size.
    pub n: usize,
    /// This node's id.
    pub me: ProcessId,
    /// The designated writer's id.
    pub writer: ProcessId,
    /// Quorum system consulted by both phases.
    pub quorum: Arc<dyn QuorumSystem>,
    /// Whether reads perform the write-back phase (`true` = atomic ABD,
    /// `false` = regular-register baseline).
    pub read_write_back: bool,
    /// How reads complete: the two-round baseline, the unanimity fast path
    /// (see [`fast_read_allowed`]), or server-to-server relay. `TwoRound`
    /// by default: the baseline protocol always pays `2` rounds per read.
    /// `FastUnanimous` is only meaningful with
    /// [`read_write_back`](SwmrConfig::read_write_back) on — the regular
    /// baseline has no write-back to elide; `Relay` replaces the write-back
    /// entirely and ignores that flag.
    pub read_mode: ReadMode,
    /// Retransmission policy for unfinished phases; `None` disables
    /// retransmission (appropriate for reliable links).
    pub retransmit: Option<BackoffPolicy>,
    /// Whether the writer persists its in-flight write intent and, after a
    /// crash and recovery, rolls the interrupted write forward instead of
    /// leaving it aborted (see the module docs). Off by default: the
    /// baseline drops in-flight operations on restart.
    pub write_epilogue: bool,
}

impl SwmrConfig {
    /// The paper's configuration: majority quorums, write-back on reads, no
    /// retransmission (reliable links).
    pub fn new(n: usize, me: ProcessId, writer: ProcessId) -> Self {
        SwmrConfig {
            n,
            me,
            writer,
            quorum: Arc::new(Majority::new(n)),
            read_write_back: true,
            read_mode: ReadMode::TwoRound,
            retransmit: None,
            write_epilogue: false,
        }
    }

    /// Replaces the quorum system.
    pub fn with_quorum(mut self, q: Arc<dyn QuorumSystem>) -> Self {
        self.quorum = q;
        self
    }

    /// Enables or disables the read write-back phase.
    pub fn with_read_write_back(mut self, yes: bool) -> Self {
        self.read_write_back = yes;
        self
    }

    /// Selects how reads complete (see [`ReadMode`]).
    pub fn with_read_mode(mut self, mode: ReadMode) -> Self {
        self.read_mode = mode;
        self
    }

    /// Enables or disables the aborted-write epilogue (roll a
    /// crash-interrupted write forward after recovery).
    pub fn with_write_epilogue(mut self, yes: bool) -> Self {
        self.write_epilogue = yes;
        self
    }

    /// Enables adaptive retransmission for lossy links: exponential backoff
    /// starting at `every`, capped at `16 * every`, with deterministic
    /// jitter (see [`BackoffPolicy::new`]).
    pub fn with_retransmit(mut self, every: Nanos) -> Self {
        self.retransmit = Some(BackoffPolicy::new(every));
        self
    }

    /// Sets an explicit retransmission policy.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.retransmit = Some(policy);
        self
    }
}

/// In-flight operation state.
#[derive(Clone, Debug)]
enum Pending<V> {
    /// Writer waiting for update acknowledgements.
    Write {
        op: OpId,
        ph: PhaseTracker,
        seq: SeqNo,
        value: V,
    },
    /// Reader collecting query replies; the census tracks the max label
    /// *and* whether the responders were unanimous about it (fast path).
    /// `cons` is the read's requested tier: `Regular` completes without the
    /// write-back, `Atomic` runs the full second phase.
    Query {
        op: OpId,
        ph: PhaseTracker,
        census: TagCensus<SeqNo, V>,
        cons: Consistency,
    },
    /// Reader propagating the value it is about to return.
    WriteBack {
        op: OpId,
        ph: PhaseTracker,
        label: SeqNo,
        value: V,
    },
    /// Relay-mode reader collecting direct server replies; completes on a
    /// write quorum of them, returning the census's minimum pair. The
    /// tracker starts empty: even this node's own reply only counts once
    /// its server-side round completes.
    RelayRead {
        op: OpId,
        ph: PhaseTracker,
        census: RelayCensus<SeqNo, V>,
    },
}

/// Post-restart catch-up: a query phase run before serving clients, so the
/// rejoining replica adopts the latest completed write it missed.
#[derive(Clone, Debug)]
struct Recovery<V> {
    ph: PhaseTracker,
    best_label: SeqNo,
    best_value: V,
}

/// One processor of the SWMR emulation: replica role plus (on the designated
/// writer) the writer role and (on every node) the reader role.
///
/// # Examples
///
/// Driving a single-node "cluster" by hand (with `n = 1` the node itself is
/// a quorum, so operations complete without any messages):
///
/// ```
/// use abd_core::context::{Effects, Protocol};
/// use abd_core::msg::{RegisterOp, RegisterResp};
/// use abd_core::swmr::{SwmrConfig, SwmrNode};
/// use abd_core::types::{OpId, ProcessId};
///
/// let mut node = SwmrNode::new(SwmrConfig::new(1, ProcessId(0), ProcessId(0)), 0u32);
/// let mut fx = Effects::new();
/// node.on_invoke(OpId(1), RegisterOp::Write(7), &mut fx);
/// node.on_invoke(OpId(2), RegisterOp::Read, &mut fx);
/// assert_eq!(fx.responses, vec![
///     (OpId(1), RegisterResp::WriteOk),
///     (OpId(2), RegisterResp::ReadOk(7)),
/// ]);
/// ```
#[derive(Clone, Debug)]
pub struct SwmrNode<V> {
    cfg: SwmrConfig,
    replica: Replica<SeqNo, V>,
    /// The writer's sequence number (meaningful only on the writer).
    seq: SeqNo,
    next_uid: u64,
    pending: Option<Pending<V>>,
    queue: VecDeque<(OpId, RegisterOp<V>)>,
    rtx: Retransmitter,
    recovering: Option<Recovery<V>>,
    /// The writer's persisted in-flight write `(op, seq, value)` — stable
    /// storage, like the replica pair. Set when a write goes pending (only
    /// with [`SwmrConfig::write_epilogue`] on), cleared when that write's
    /// `WriteOk` is issued; a crash in between leaves it for the
    /// post-recovery epilogue to roll forward.
    intent: Option<(OpId, SeqNo, V)>,
    /// Server-side relay rounds in progress, keyed by `(reader, uid)`: the
    /// tracker records whose forwards (or, for the reader itself, whose
    /// query) this server has seen. Volatile — cleared on restart.
    relays: BTreeMap<(ProcessId, u64), PhaseTracker>,
    /// Highest relay round uid completed here per reader, so duplicate
    /// queries re-send the reply instead of reopening the round. Volatile.
    relay_done: BTreeMap<ProcessId, u64>,
    fast_reads: u64,
    write_backs: u64,
    relay_reads: u64,
    sc_reads: u64,
    regular_reads: u64,
}

impl<V: Clone + std::fmt::Debug + Send + 'static> SwmrNode<V> {
    /// Creates a node holding `initial` as the register's initial value
    /// (label `0`, conceptually written before the execution starts).
    pub fn new(cfg: SwmrConfig, initial: V) -> Self {
        assert!(cfg.me.index() < cfg.n, "node id out of range");
        assert!(cfg.writer.index() < cfg.n, "writer id out of range");
        assert_eq!(
            cfg.quorum.n(),
            cfg.n,
            "quorum system sized for a different cluster"
        );
        let rtx = Retransmitter::new(cfg.retransmit, cfg.me);
        SwmrNode {
            cfg,
            replica: Replica::new(0, initial),
            seq: 0,
            next_uid: 0,
            pending: None,
            queue: VecDeque::new(),
            rtx,
            recovering: None,
            intent: None,
            relays: BTreeMap::new(),
            relay_done: BTreeMap::new(),
            fast_reads: 0,
            write_backs: 0,
            relay_reads: 0,
            sc_reads: 0,
            regular_reads: 0,
        }
    }

    /// This node's replica state `(label, value)` — for inspection in tests
    /// and metrics.
    pub fn replica_state(&self) -> (SeqNo, V) {
        self.replica.snapshot()
    }

    /// Whether an operation is currently in flight on this node.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether the node is catching up after a restart (invocations queue
    /// until the catch-up read completes).
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// Messages this node has retransmitted over its lifetime.
    pub fn retransmissions(&self) -> u64 {
        self.rtx.retransmissions()
    }

    /// Number of invocations waiting behind the in-flight operation.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The node's configuration.
    pub fn config(&self) -> &SwmrConfig {
        &self.cfg
    }

    /// Reads issued here that completed on the one-round fast path.
    pub fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    /// Reads issued here that executed the write-back phase.
    pub fn write_backs(&self) -> u64 {
        self.write_backs
    }

    /// Reads issued here that completed via server-to-server relay.
    pub fn relay_reads(&self) -> u64 {
        self.relay_reads
    }

    /// Reads issued here that completed at `Consistency::Sequential`
    /// (served locally, zero network rounds).
    pub fn sc_reads(&self) -> u64 {
        self.sc_reads
    }

    /// Reads issued here that completed at `Consistency::Regular` (query
    /// round only, write-back elided).
    pub fn regular_reads(&self) -> u64 {
        self.regular_reads
    }

    fn fresh_uid(&mut self) -> u64 {
        self.next_uid += 1;
        self.next_uid
    }

    fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        (0..self.cfg.n)
            .map(ProcessId)
            .filter(move |&p| p != self.cfg.me)
    }

    fn broadcast(&self, msg: SwmrMsg<V>, fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>) {
        for p in self.others() {
            fx.send(p, msg.clone());
        }
    }

    fn arm_timer(&mut self, uid: u64, fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>) {
        self.rtx.arm(uid, fx);
    }

    fn disarm_timer(&mut self, uid: u64, fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>) {
        self.rtx.disarm(uid, fx);
    }

    /// Completes the post-restart catch-up: adopt the freshest pair a read
    /// quorum reported, then serve anything that queued while recovering.
    fn finish_recovery(
        &mut self,
        label: SeqNo,
        value: V,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        self.recovering = None;
        self.replica.adopt(label, value);
        if self.cfg.me == self.cfg.writer {
            // The writer's next label must exceed every label it ever
            // issued; its own persisted replica is part of the quorum, so
            // `label` already covers the pre-crash sequence number.
            self.seq = self.seq.max(label);
            if self.cfg.write_epilogue && self.pending.is_none() {
                if let Some((op, seq, v)) = self.intent.clone() {
                    self.resume_write(op, seq, v, fx);
                }
            }
        }
        if self.pending.is_none() {
            if let Some((next_op, next_input)) = self.queue.pop_front() {
                self.begin(next_op, next_input, fx);
            }
        }
    }

    /// The aborted-write epilogue: re-issue the crash-interrupted write as
    /// a fresh phase. The persisted replica adopted `(seq, value)` before
    /// the original broadcast, so re-propagating the pair is idempotent;
    /// the client's `WriteOk` is issued once a write quorum holds it. The
    /// intent stays set until then — a second crash rolls forward again.
    fn resume_write(
        &mut self,
        op: OpId,
        seq: SeqNo,
        value: V,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        // Intent is only recorded when the writer alone is *not* a write
        // quorum (`begin_write` completes in place otherwise), so the
        // resumed phase always has peers to wait for.
        debug_assert!(!self.cfg.quorum.is_write_quorum(ph.responders()));
        self.pending = Some(Pending::Write {
            op,
            ph,
            seq,
            value: value.clone(),
        });
        self.broadcast(
            RegisterMsg::Update {
                uid,
                label: seq,
                value,
            },
            fx,
        );
        self.arm_timer(uid, fx);
    }

    fn finish(
        &mut self,
        op: OpId,
        resp: RegisterResp<V>,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        self.pending = None;
        if self.intent.as_ref().is_some_and(|(o, _, _)| *o == op) {
            self.intent = None;
        }
        fx.respond(op, resp);
        if let Some((next_op, next_input)) = self.queue.pop_front() {
            self.begin(next_op, next_input, fx);
        }
    }

    fn begin(
        &mut self,
        op: OpId,
        input: RegisterOp<V>,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        debug_assert!(self.pending.is_none());
        match input {
            RegisterOp::Write(v) => self.begin_write(op, v, fx),
            RegisterOp::Read => self.begin_read(op, Consistency::Atomic, fx),
            RegisterOp::ReadAt(cons) => self.begin_read(op, cons, fx),
        }
    }

    fn begin_write(&mut self, op: OpId, v: V, fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>) {
        if self.cfg.me != self.cfg.writer {
            fx.respond(
                op,
                RegisterResp::Err(RegisterError::NotWriter {
                    invoked_on: self.cfg.me,
                    writer: self.cfg.writer,
                }),
            );
            // Not an in-flight op: serve whatever is queued next.
            if self.pending.is_none() {
                if let Some((next_op, next_input)) = self.queue.pop_front() {
                    self.begin(next_op, next_input, fx);
                }
            }
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        self.replica.adopt(seq, v.clone());
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        if self.cfg.quorum.is_write_quorum(ph.responders()) {
            fx.respond(op, RegisterResp::WriteOk);
            return;
        }
        if self.cfg.write_epilogue {
            self.intent = Some((op, seq, v.clone()));
        }
        self.pending = Some(Pending::Write {
            op,
            ph,
            seq,
            value: v.clone(),
        });
        self.broadcast(
            RegisterMsg::Update {
                uid,
                label: seq,
                value: v,
            },
            fx,
        );
        self.arm_timer(uid, fx);
    }

    fn begin_read(
        &mut self,
        op: OpId,
        cons: Consistency,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        if cons == Consistency::Sequential {
            // SC-ABD: serve the local replica with no network round. The
            // replica pair is stable storage and `adopt` is monotone (and
            // recovery only raises the label), so each client's reads
            // observe a non-decreasing prefix of the writer's order — see
            // DESIGN.md's consistency-tier section for the full argument.
            self.sc_reads += 1;
            let (_, value) = self.replica.snapshot();
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        if cons == Consistency::Atomic && self.cfg.read_mode == ReadMode::Relay {
            self.begin_relay_read(op, fx);
            return;
        }
        // Regular reads ignore `read_mode`: the relay round exists to
        // replace the write-back, which a regular read skips anyway, and
        // the fast path is an atomic-tier optimization.
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        let (label, value) = self.replica.snapshot();
        let census = TagCensus::new(label, value);
        if self.cfg.quorum.is_read_quorum(ph.responders()) {
            self.complete_read_query(op, ph.responders(), census, cons, fx);
            return;
        }
        self.pending = Some(Pending::Query {
            op,
            ph,
            census,
            cons,
        });
        self.broadcast(RegisterMsg::Query { uid }, fx);
        self.arm_timer(uid, fx);
    }

    /// The read's query phase holds a read quorum. A `Regular`-tier read
    /// completes here with the census maximum (write-back elided by
    /// definition); an atomic read either takes the one-round fast path
    /// (unanimous responders that form a write quorum — the max label is
    /// already durable, so the write-back is redundant) or falls through to
    /// the two-phase slow path.
    fn complete_read_query(
        &mut self,
        op: OpId,
        responders: &ProcSet,
        census: TagCensus<SeqNo, V>,
        cons: Consistency,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        if cons == Consistency::Regular {
            self.regular_reads += 1;
            let (label, value) = census.into_best();
            // Adopt locally even though the write-back is skipped: keeping
            // the local replica at least as fresh as any value this node
            // has returned is what lets Regular and Sequential reads from
            // the same client compose (DESIGN.md, consistency tiers).
            self.replica.adopt(label, value.clone());
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        if self.cfg.read_mode == ReadMode::FastUnanimous
            && self.cfg.read_write_back
            && fast_read_allowed(self.cfg.quorum.as_ref(), responders, census.unanimous())
        {
            self.fast_reads += 1;
            let (_, value) = census.into_best();
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        let (label, value) = census.into_best();
        self.enter_write_back(op, label, value, fx);
    }

    /// Second half of a read: either respond immediately (regular baseline)
    /// or propagate the chosen pair to a write quorum first (atomic ABD).
    fn enter_write_back(
        &mut self,
        op: OpId,
        label: SeqNo,
        value: V,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        if !self.cfg.read_write_back {
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        self.write_backs += 1;
        self.replica.adopt(label, value.clone());
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        if self.cfg.quorum.is_write_quorum(ph.responders()) {
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        self.pending = Some(Pending::WriteBack {
            op,
            ph,
            label,
            value: value.clone(),
        });
        self.broadcast(RegisterMsg::Update { uid, label, value }, fx);
        self.arm_timer(uid, fx);
    }

    /// Opens a relay read: broadcast our replica snapshot as the round's
    /// query (it doubles as our server-role forward) and join our own
    /// server round. With a single-node cluster both the round and the read
    /// complete in place, without messages.
    fn begin_relay_read(&mut self, op: OpId, fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>) {
        let uid = self.fresh_uid();
        self.pending = Some(Pending::RelayRead {
            op,
            ph: PhaseTracker::new_empty(uid, self.cfg.n),
            census: RelayCensus::new(),
        });
        let (label, value) = self.replica.snapshot();
        self.broadcast(RegisterMsg::RelayQuery { uid, label, value }, fx);
        self.arm_timer(uid, fx);
        self.relay_observe(self.cfg.me, uid, self.cfg.me, fx);
    }

    /// Whether relay round `(reader, uid)` has already completed here.
    fn relay_round_done(&self, reader: ProcessId, uid: u64) -> bool {
        self.relay_done
            .get(&reader)
            .is_some_and(|&done| done >= uid)
    }

    /// Sends this server's forward for round `(reader, uid)` to `targets`.
    fn relay_fwd_to(
        &self,
        targets: &[ProcessId],
        reader: ProcessId,
        uid: u64,
        echo: bool,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        let (label, value) = self.replica.snapshot();
        for &p in targets {
            fx.send(
                p,
                RegisterMsg::RelayFwd {
                    uid,
                    reader,
                    label,
                    value: value.clone(),
                    echo,
                },
            );
        }
    }

    /// Records `from`'s forward (the reader's query doubles as its forward)
    /// in server round `(reader, uid)`, creating the round — and
    /// broadcasting our own forward — on first contact. Once the round's
    /// forwards cover a read quorum it is retired: the done floor advances
    /// and our replica snapshot goes to the reader as its direct reply
    /// (fed straight into our own pending read when we are the reader).
    fn relay_observe(
        &mut self,
        reader: ProcessId,
        uid: u64,
        from: ProcessId,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        let (n, me) = (self.cfg.n, self.cfg.me);
        let created = !self.relays.contains_key(&(reader, uid));
        if created {
            // Contact for round `uid` implies the reader is past any
            // earlier round: readers are sequential and uids increase, so
            // stale abandoned rounds for this reader can be dropped.
            self.relays.retain(|&(r, u), _| r != reader || u >= uid);
            self.relays
                .insert((reader, uid), PhaseTracker::new(uid, n, me));
        }
        let complete = match self.relays.get_mut(&(reader, uid)) {
            Some(ph) => {
                ph.record(from, uid);
                self.cfg.quorum.is_read_quorum(ph.responders())
            }
            None => false,
        };
        if !complete {
            if created && reader != me {
                // First contact: forward our snapshot to every other server
                // (the reader included — its own round needs ours too). The
                // reader's snapshot already travelled in its query.
                let targets: Vec<ProcessId> = self.others().collect();
                self.relay_fwd_to(&targets, reader, uid, false, fx);
            }
            return;
        }
        // The tracker stays behind (pruned when the reader's next round
        // arrives) so stragglers are told apart from true duplicates.
        let floor = self.relay_done.entry(reader).or_insert(0);
        *floor = (*floor).max(uid);
        let (label, value) = self.replica.snapshot();
        if reader == me {
            self.relay_reply_in(me, uid, label, value, fx);
        } else {
            fx.send(reader, RegisterMsg::RelayReply { uid, label, value });
        }
    }

    /// Reader-side processing of one direct server reply (our own arrives
    /// here straight from [`SwmrNode::relay_observe`] when our server round
    /// completes). Completes the read on a write quorum of replies with the
    /// census's minimum pair — see the module docs for why the minimum.
    fn relay_reply_in(
        &mut self,
        from: ProcessId,
        uid: u64,
        label: SeqNo,
        value: V,
        fx: &mut Effects<SwmrMsg<V>, RegisterResp<V>>,
    ) {
        let Some(Pending::RelayRead { ph, census, .. }) = self.pending.as_mut() else {
            return;
        };
        if !ph.record(from, uid) {
            return;
        }
        census.observe(label, value);
        if !self.cfg.quorum.is_write_quorum(ph.responders()) {
            return;
        }
        if let Some(Pending::RelayRead { op, census, .. }) = self.pending.take() {
            self.disarm_timer(uid, fx);
            self.relay_reads += 1;
            let (label, value) = match census.into_min() {
                Some(best) => best,
                // Unreachable — a write quorum is never empty — but total.
                None => self.replica.snapshot(),
            };
            self.replica.adopt(label, value.clone());
            self.finish(op, RegisterResp::ReadOk(value), fx);
        }
    }

    /// Message a phase (re)transmits to processors that have not responded.
    fn phase_message(&self) -> Option<SwmrMsg<V>> {
        match self.pending.as_ref()? {
            Pending::Write { ph, seq, value, .. } => Some(RegisterMsg::Update {
                uid: ph.uid(),
                label: *seq,
                value: value.clone(),
            }),
            Pending::Query { ph, .. } => Some(RegisterMsg::Query { uid: ph.uid() }),
            Pending::WriteBack {
                ph, label, value, ..
            } => Some(RegisterMsg::Update {
                uid: ph.uid(),
                label: *label,
                value: value.clone(),
            }),
            Pending::RelayRead { ph, .. } => {
                // Retransmit the query with the *current* snapshot —
                // monotone above the original, so receivers only move
                // forward.
                let (label, value) = self.replica.snapshot();
                Some(RegisterMsg::RelayQuery {
                    uid: ph.uid(),
                    label,
                    value,
                })
            }
        }
    }
}

impl<V: Clone + std::fmt::Debug + Send + 'static> Protocol for SwmrNode<V> {
    type Msg = SwmrMsg<V>;
    type Op = RegisterOp<V>;
    type Resp = RegisterResp<V>;

    fn id(&self) -> ProcessId {
        self.cfg.me
    }

    fn on_invoke(
        &mut self,
        op: OpId,
        input: RegisterOp<V>,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        if self.pending.is_some() || self.recovering.is_some() {
            self.queue.push_back((op, input));
        } else {
            self.begin(op, input, fx);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: SwmrMsg<V>,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        match msg {
            // ---- replica role ----
            RegisterMsg::Query { uid } => {
                let (label, value) = self.replica.snapshot();
                fx.send(from, RegisterMsg::QueryReply { uid, label, value });
            }
            RegisterMsg::Update { uid, label, value } => {
                self.replica.adopt(label, value);
                fx.send(from, RegisterMsg::UpdateAck { uid });
            }
            // ---- client role ----
            RegisterMsg::QueryReply { uid, label, value } => {
                if let Some(rec) = self.recovering.as_mut() {
                    if !rec.ph.record(from, uid) {
                        return;
                    }
                    if label > rec.best_label {
                        rec.best_label = label;
                        rec.best_value = value;
                    }
                    if self.cfg.quorum.is_read_quorum(rec.ph.responders()) {
                        if let Some(rec) = self.recovering.take() {
                            self.disarm_timer(uid, fx);
                            self.finish_recovery(rec.best_label, rec.best_value, fx);
                        }
                    }
                    return;
                }
                let Some(Pending::Query { ph, census, .. }) = self.pending.as_mut() else {
                    return;
                };
                if !ph.record(from, uid) {
                    return;
                }
                census.observe(label, value);
                if self.cfg.quorum.is_read_quorum(ph.responders()) {
                    if let Some(Pending::Query {
                        op,
                        ph,
                        census,
                        cons,
                    }) = self.pending.take()
                    {
                        self.disarm_timer(uid, fx);
                        self.complete_read_query(op, ph.responders(), census, cons, fx);
                    }
                }
            }
            // ---- relay read: server and reader roles ----
            RegisterMsg::RelayQuery { uid, label, value } => {
                self.replica.adopt(label, value);
                if self.relay_round_done(from, uid) {
                    // Reader retransmission after our round completed: both
                    // our forward (for the reader's own round) and our
                    // reply may have been lost — re-send the current
                    // snapshot, which is monotone above the originals.
                    self.relay_fwd_to(&[from], from, uid, true, fx);
                    let (label, value) = self.replica.snapshot();
                    fx.send(from, RegisterMsg::RelayReply { uid, label, value });
                    return;
                }
                let repeat = self
                    .relays
                    .get(&(from, uid))
                    .is_some_and(|ph| ph.responders().contains(from));
                if repeat {
                    // Duplicate query while we are still gathering: our
                    // forwards may have been lost — re-send to the peers we
                    // have not heard from (completed peers echo back) and
                    // to the stuck reader itself.
                    let mut targets = Vec::new();
                    if let Some(ph) = self.relays.get(&(from, uid)) {
                        targets = ph.missing();
                    }
                    targets.push(from);
                    self.relay_fwd_to(&targets, from, uid, false, fx);
                    return;
                }
                self.relay_observe(from, uid, from, fx);
            }
            RegisterMsg::RelayFwd {
                uid,
                reader,
                label,
                value,
                echo,
            } => {
                self.replica.adopt(label, value);
                let repeat = self
                    .relays
                    .get(&(reader, uid))
                    .is_some_and(|ph| ph.responders().contains(from));
                if repeat {
                    if !echo {
                        // A re-sent forward means the sender is stuck and
                        // may have lost ours — echo our snapshot so its
                        // tracker can count us. Echoes are never answered,
                        // so healing can't ping-pong.
                        self.relay_fwd_to(&[from], reader, uid, true, fx);
                    }
                    return;
                }
                if self.relay_round_done(reader, uid) {
                    // Straggler forward for a round already completed here:
                    // record it so a later duplicate is recognized as such;
                    // nothing to send.
                    if let Some(ph) = self.relays.get_mut(&(reader, uid)) {
                        ph.record(from, uid);
                    }
                    return;
                }
                self.relay_observe(reader, uid, from, fx);
            }
            RegisterMsg::RelayReply { uid, label, value } => {
                self.replica.adopt(label, value.clone());
                self.relay_reply_in(from, uid, label, value, fx);
            }
            RegisterMsg::UpdateAck { uid } => {
                let done = match self.pending.as_mut() {
                    Some(Pending::Write { ph, op, .. }) => {
                        if ph.record(from, uid) && self.cfg.quorum.is_write_quorum(ph.responders())
                        {
                            Some((*op, RegisterResp::WriteOk))
                        } else {
                            None
                        }
                    }
                    Some(Pending::WriteBack { ph, op, value, .. }) => {
                        if ph.record(from, uid) && self.cfg.quorum.is_write_quorum(ph.responders())
                        {
                            Some((*op, RegisterResp::ReadOk(value.clone())))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((op, resp)) = done {
                    self.disarm_timer(uid, fx);
                    self.finish(op, resp, fx);
                }
            }
        }
    }

    fn on_timer(&mut self, key: TimerKey, fx: &mut Effects<Self::Msg, Self::Resp>) {
        if let Some(rec) = self.recovering.as_ref() {
            if rec.ph.uid() != key.0 {
                return;
            }
            let (uid, missing) = (rec.ph.uid(), rec.ph.missing());
            self.rtx
                .fire(key.0, &missing, RegisterMsg::Query { uid }, fx);
            return;
        }
        let Some(pending) = self.pending.as_ref() else {
            return;
        };
        let ph = match pending {
            Pending::Write { ph, .. }
            | Pending::Query { ph, .. }
            | Pending::WriteBack { ph, .. }
            | Pending::RelayRead { ph, .. } => ph,
        };
        if ph.uid() != key.0 {
            return; // Timer from a phase that already completed.
        }
        let mut missing = ph.missing();
        if matches!(pending, Pending::RelayRead { .. }) {
            // A relay reader can be stuck on replies *or* on forwards for
            // its own server round; re-query both sets. The empty-seeded
            // reply tracker lists `me` as missing — never send to self.
            if let Some(rph) = self.relays.get(&(self.cfg.me, key.0)) {
                for p in rph.missing() {
                    if !missing.contains(&p) {
                        missing.push(p);
                    }
                }
                missing.sort();
            }
            missing.retain(|&p| p != self.cfg.me);
        }
        if let Some(msg) = self.phase_message() {
            self.rtx.fire(key.0, &missing, msg, fx);
        }
    }

    fn on_restart(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        // Volatile state is gone: the in-flight operation (its client sees
        // an aborted op), the invocation queue, and any retry schedule. The
        // replica pair, the writer's sequence number and the phase-uid
        // counter model stable storage and survive — see the module docs
        // for why a fully amnesiac replica would break atomicity.
        self.pending = None;
        self.queue.clear();
        self.rtx.reset();
        // Relay bookkeeping is volatile too: rounds this server was
        // gathering and the done floors vanish with the crash. Safe, because
        // a post-restart reply still carries the *persisted* replica — the
        // quorum-intersection argument never depended on round state.
        self.relays.clear();
        self.relay_done.clear();
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        let (best_label, best_value) = self.replica.snapshot();
        if self.cfg.quorum.is_read_quorum(ph.responders()) {
            // Nothing to catch up from — but a crash-interrupted write
            // (possible when this node is a read quorum yet not a write
            // quorum, e.g. an R=1 threshold system) still rolls forward.
            if self.cfg.me == self.cfg.writer && self.cfg.write_epilogue {
                if let Some((op, seq, v)) = self.intent.clone() {
                    self.resume_write(op, seq, v, fx);
                }
            }
            return;
        }
        self.recovering = Some(Recovery {
            ph,
            best_label,
            best_value,
        });
        self.broadcast(RegisterMsg::Query { uid }, fx);
        self.arm_timer(uid, fx);
    }
}

impl<V: Clone + std::fmt::Debug + Send + 'static> ReadPathStats for SwmrNode<V> {
    fn fast_reads(&self) -> u64 {
        self.fast_reads
    }

    fn write_backs(&self) -> u64 {
        self.write_backs
    }

    fn relay_reads(&self) -> u64 {
        self.relay_reads
    }

    fn sc_reads(&self) -> u64 {
        self.sc_reads
    }

    fn regular_reads(&self) -> u64 {
        self.regular_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quorum::Threshold;
    use crate::testutil::MiniNet;

    fn cluster(n: usize, write_back: bool) -> MiniNet<SwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| {
                let cfg =
                    SwmrConfig::new(n, ProcessId(i), ProcessId(0)).with_read_write_back(write_back);
                SwmrNode::new(cfg, 0u32)
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn write_then_read_returns_written_value() {
        let mut net = cluster(3, true);
        net.invoke(0, RegisterOp::Write(42));
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);

        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(42))]
        );
    }

    #[test]
    fn initial_value_is_readable() {
        let mut net = cluster(5, true);
        net.invoke(4, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(0), RegisterResp::ReadOk(0))]
        );
    }

    #[test]
    fn non_writer_write_is_rejected() {
        let mut net = cluster(3, true);
        net.invoke(1, RegisterOp::Write(7));
        net.run_to_quiescence();
        match &net.take_responses()[..] {
            [(_, RegisterResp::Err(RegisterError::NotWriter { invoked_on, writer }))] => {
                assert_eq!(*invoked_on, ProcessId(1));
                assert_eq!(*writer, ProcessId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequential_writes_are_ordered() {
        let mut net = cluster(3, true);
        for v in [1u32, 2, 3, 4, 5] {
            net.invoke(0, RegisterOp::Write(v));
            net.run_to_quiescence();
        }
        net.take_responses();
        net.invoke(1, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, RegisterResp::ReadOk(5));
        // Every replica converged to seq 5.
        for i in 0..3 {
            assert_eq!(net.node(i).replica_state().0, 5);
        }
    }

    #[test]
    fn queued_invocations_run_in_fifo_order() {
        let mut net = cluster(3, true);
        // Invoke three ops on the writer before delivering any message.
        net.invoke(0, RegisterOp::Write(1));
        net.invoke(0, RegisterOp::Read);
        net.invoke(0, RegisterOp::Write(2));
        assert!(net.node(0).is_busy());
        assert_eq!(net.node(0).queue_len(), 2);
        net.run_to_quiescence();
        let resp = net.take_responses();
        assert_eq!(
            resp,
            vec![
                (OpId(0), RegisterResp::WriteOk),
                (OpId(1), RegisterResp::ReadOk(1)),
                (OpId(2), RegisterResp::WriteOk),
            ]
        );
    }

    #[test]
    fn write_completes_with_minority_crashed() {
        let mut net = cluster(5, true);
        net.crash(3);
        net.crash(4);
        net.invoke(0, RegisterOp::Write(9));
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
        net.invoke(1, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(9))]
        );
    }

    #[test]
    fn write_blocks_with_majority_crashed() {
        let mut net = cluster(5, true);
        for i in 2..5 {
            net.crash(i);
        }
        net.invoke(0, RegisterOp::Write(9));
        net.run_to_quiescence();
        assert!(
            net.take_responses().is_empty(),
            "op must block without a quorum"
        );
        assert!(net.node(0).is_busy());
    }

    #[test]
    fn read_write_back_helps_lagging_majority() {
        // Classic scenario: the writer's update reached only the quorum
        // {0,1,2}; replicas 3 and 4 are stale. A read that observes the new
        // value propagates it before returning.
        let mut net = cluster(5, true);
        // Drop updates to 3 and 4 during the write.
        net.set_drop_filter(|_, to, _| to.index() >= 3);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses().len(),
            1,
            "write reached quorum {{0,1,2}}"
        );
        net.clear_drop_filter();
        assert_eq!(net.node(3).replica_state().0, 0, "p3 stale before the read");
        assert_eq!(net.node(4).replica_state().0, 0, "p4 stale before the read");
        // Reader 3 (stale itself) queries everyone; quorum replies include a
        // fresh value, which the write-back then installs everywhere.
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r[0].1, RegisterResp::ReadOk(1));
        let fresh = (0..5)
            .filter(|&i| net.node(i).replica_state().0 == 1)
            .count();
        assert_eq!(fresh, 5, "write-back must spread the value");
    }

    #[test]
    fn regular_baseline_skips_write_back_phase() {
        let mut net = cluster(3, false);
        net.invoke(0, RegisterOp::Write(5));
        net.run_to_quiescence();
        net.take_responses();
        let sent_before = net.messages_sent();
        net.invoke(1, RegisterOp::Read);
        net.run_to_quiescence();
        let read_msgs = net.messages_sent() - sent_before;
        // Regular read: query + replies only = 2(n-1) = 4 messages.
        assert_eq!(read_msgs, 4);
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(5));
    }

    #[test]
    fn atomic_read_costs_4n_minus_4_messages() {
        let mut net = cluster(5, true);
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        // query + replies + write-back updates + acks = 4(n-1).
        assert_eq!(net.messages_sent(), 4 * (5 - 1));
    }

    #[test]
    fn sequential_read_is_local_and_free() {
        let mut net = cluster(5, true);
        net.invoke(0, RegisterOp::Write(7));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        net.invoke(2, RegisterOp::ReadAt(Consistency::Sequential));
        net.run_to_quiescence();
        assert_eq!(net.messages_sent() - before, 0, "SC read sends nothing");
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(7))]
        );
        assert_eq!(net.node(2).sc_reads(), 1);
        assert_eq!(net.node(2).write_backs(), 0);
    }

    #[test]
    fn sequential_read_can_lag_but_never_regresses_locally() {
        let mut net = cluster(5, true);
        // The write reaches only {0,1,2}; node 3's local replica is stale.
        net.set_drop_filter(|_, to, _| to.index() >= 3);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        net.take_responses();
        net.clear_drop_filter();
        net.invoke(3, RegisterOp::ReadAt(Consistency::Sequential));
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses()[0].1,
            RegisterResp::ReadOk(0),
            "SC read may serve the stale local value"
        );
        // An atomic read raises the local replica; SC reads never go back.
        net.invoke(3, RegisterOp::Read);
        net.invoke(3, RegisterOp::ReadAt(Consistency::Sequential));
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r[0].1, RegisterResp::ReadOk(1));
        assert_eq!(r[1].1, RegisterResp::ReadOk(1), "local label only rises");
    }

    #[test]
    fn regular_tier_read_skips_write_back_and_counts() {
        let mut net = cluster(5, true);
        net.invoke(0, RegisterOp::Write(4));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        net.invoke(1, RegisterOp::ReadAt(Consistency::Regular));
        net.run_to_quiescence();
        // Query + replies only = 2(n-1); no write-back round.
        assert_eq!(net.messages_sent() - before, 2 * (5 - 1));
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(4))]
        );
        assert_eq!(net.node(1).regular_reads(), 1);
        assert_eq!(net.node(1).write_backs(), 0);
    }

    #[test]
    fn regular_tier_read_adopts_census_max_locally() {
        let mut net = cluster(5, true);
        net.set_drop_filter(|_, to, _| to.index() >= 3);
        net.invoke(0, RegisterOp::Write(6));
        net.run_to_quiescence();
        net.take_responses();
        net.clear_drop_filter();
        assert_eq!(net.node(3).replica_state().0, 0);
        net.invoke(3, RegisterOp::ReadAt(Consistency::Regular));
        net.run_to_quiescence();
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(6));
        // The reader adopted what it returned (so a later SC read on the
        // same node cannot regress), but lagging peers were not updated.
        assert_eq!(net.node(3).replica_state().0, 1);
        assert_eq!(net.node(4).replica_state().0, 0, "no write-back spread");
    }

    #[test]
    fn read_at_atomic_matches_plain_read() {
        let mut net = cluster(3, true);
        net.invoke(0, RegisterOp::Write(9));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        net.invoke(1, RegisterOp::ReadAt(Consistency::Atomic));
        net.run_to_quiescence();
        assert_eq!(net.messages_sent() - before, 4 * (3 - 1));
        assert_eq!(net.take_responses()[0].1, RegisterResp::ReadOk(9));
        assert_eq!(net.node(1).write_backs(), 1);
        assert_eq!(net.node(1).sc_reads(), 0);
        assert_eq!(net.node(1).regular_reads(), 0);
    }

    #[test]
    fn write_costs_2n_minus_2_messages() {
        let mut net = cluster(7, true);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        assert_eq!(net.messages_sent(), 2 * (7 - 1));
    }

    #[test]
    fn stale_replies_are_ignored() {
        let mut node = SwmrNode::new(SwmrConfig::new(3, ProcessId(1), ProcessId(0)), 0u32);
        let mut fx = Effects::new();
        // Reply for a phase that does not exist.
        node.on_message(
            ProcessId(0),
            RegisterMsg::QueryReply {
                uid: 99,
                label: 7,
                value: 1,
            },
            &mut fx,
        );
        node.on_message(ProcessId(0), RegisterMsg::UpdateAck { uid: 99 }, &mut fx);
        assert!(fx.is_empty());
        assert_eq!(node.replica_state(), (0, 0));
    }

    #[test]
    fn retransmission_fills_in_lost_messages() {
        let nodes: Vec<SwmrNode<u32>> = (0..3)
            .map(|i| {
                SwmrNode::new(
                    SwmrConfig::new(3, ProcessId(i), ProcessId(0)).with_retransmit(1_000),
                    0,
                )
            })
            .collect();
        let mut net = MiniNet::new(nodes);
        // Lose every message once; retransmission must recover.
        net.set_drop_filter({
            let mut dropped = std::collections::HashSet::new();
            move |from, to, _| dropped.insert((from, to))
        });
        net.invoke(0, RegisterOp::Write(3));
        net.run_to_quiescence();
        assert!(net.take_responses().is_empty(), "first transmission lost");
        // First retransmission: the updates get through, but the (first)
        // acknowledgements on the reverse links are lost too.
        net.fire_timers(0);
        net.run_to_quiescence();
        assert!(net.take_responses().is_empty(), "first acks lost");
        // Second retransmission: replicas re-ack idempotently and the write
        // completes.
        net.fire_timers(0);
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
    }

    #[test]
    fn read_one_quorum_completes_without_messages_to_others() {
        // R=1: the reader's own replica is a read quorum, and W=n demands
        // everyone. This is the deliberately weak Dynamo-ish configuration.
        let nodes: Vec<SwmrNode<u32>> = (0..3)
            .map(|i| {
                let cfg = SwmrConfig::new(3, ProcessId(i), ProcessId(0))
                    .with_quorum(Arc::new(Threshold::new(3, 1, 3)))
                    .with_read_write_back(false);
                SwmrNode::new(cfg, 0)
            })
            .collect();
        let mut net = MiniNet::new(nodes);
        net.invoke(2, RegisterOp::Read);
        // Completes instantly: no messages at all.
        assert_eq!(net.messages_sent(), 0);
        assert_eq!(
            net.take_responses(),
            vec![(OpId(0), RegisterResp::ReadOk(0))]
        );
    }

    #[test]
    fn restart_catches_up_via_query_phase() {
        let mut net = cluster(5, true);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        net.take_responses();
        // p3 misses the second write entirely.
        net.crash(3);
        net.invoke(0, RegisterOp::Write(2));
        net.run_to_quiescence();
        net.take_responses();
        assert_eq!(net.node(3).replica_state().0, 1, "p3 stale while down");
        net.restart(3);
        assert!(net.node(3).is_recovering());
        net.run_to_quiescence();
        assert!(!net.node(3).is_recovering());
        assert_eq!(net.node(3).replica_state(), (2, 2), "catch-up adopted");
    }

    #[test]
    fn invocations_queue_during_recovery_then_run() {
        let mut net = cluster(3, true);
        net.invoke(0, RegisterOp::Write(7));
        net.run_to_quiescence();
        net.take_responses();
        net.crash(2);
        net.restart(2);
        assert!(net.node(2).is_recovering());
        net.invoke(2, RegisterOp::Read);
        assert_eq!(net.node(2).queue_len(), 1, "queued behind recovery");
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(7))]
        );
    }

    #[test]
    fn writer_restart_does_not_reuse_labels() {
        let mut net = cluster(3, true);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        net.take_responses();
        net.crash(0);
        net.restart(0);
        net.run_to_quiescence();
        net.invoke(0, RegisterOp::Write(2));
        net.run_to_quiescence();
        assert_eq!(net.node(1).replica_state(), (2, 2), "labels keep growing");
    }

    #[test]
    fn restart_wipes_inflight_op_and_queue() {
        let mut net = cluster(5, true);
        net.set_drop_filter(|_, _, _| true); // strand the write
        net.invoke(0, RegisterOp::Write(9));
        net.invoke(0, RegisterOp::Read);
        assert!(net.node(0).is_busy());
        assert_eq!(net.node(0).queue_len(), 1);
        net.crash(0);
        net.clear_drop_filter();
        net.restart(0);
        net.run_to_quiescence();
        assert!(!net.node(0).is_busy(), "in-flight op wiped");
        assert_eq!(net.node(0).queue_len(), 0, "queue wiped");
        assert!(net.take_responses().is_empty(), "lost ops never respond");
    }

    fn fast_cluster(n: usize) -> MiniNet<SwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| {
                let cfg = SwmrConfig::new(n, ProcessId(i), ProcessId(0))
                    .with_read_mode(ReadMode::FastUnanimous);
                SwmrNode::new(cfg, 0u32)
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn uncontended_fast_read_elides_write_back() {
        let mut net = fast_cluster(5);
        net.invoke(0, RegisterOp::Write(3));
        net.run_to_quiescence();
        net.take_responses();
        let before = net.messages_sent();
        // Every replica holds (1, 3): the query quorum is unanimous, so the
        // read completes in one round — 2(n-1) messages, no write-back.
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.messages_sent() - before, 2 * (5 - 1));
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(3))]
        );
        assert_eq!(net.node(2).fast_reads(), 1);
        assert_eq!(net.node(2).write_backs(), 0);
    }

    #[test]
    fn stale_quorum_disagreement_forces_slow_path() {
        // The write reaches only {0,1,2}; stale reader 3's query quorum then
        // mixes fresh and stale labels — no unanimity, no elision.
        let mut net = fast_cluster(5);
        net.set_drop_filter(|_, to, _| to.index() >= 3);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        net.take_responses();
        net.clear_drop_filter();
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(1))]
        );
        assert_eq!(net.node(3).fast_reads(), 0, "disagreement must not elide");
        assert_eq!(net.node(3).write_backs(), 1, "slow path ran instead");
        // And the write-back did its job: the value spread.
        let fresh = (0..5)
            .filter(|&i| net.node(i).replica_state().0 == 1)
            .count();
        assert_eq!(fresh, 5);
    }

    #[test]
    fn fast_path_needs_a_write_quorum_of_responders() {
        // R=1, W=majority: the reader alone is a read quorum, and even a
        // unanimous one — but one replica is not a write quorum, so the
        // elision must not fire (a later read quorum could miss the label).
        let nodes: Vec<SwmrNode<u32>> = (0..5)
            .map(|i| {
                let cfg = SwmrConfig::new(5, ProcessId(i), ProcessId(0))
                    .with_quorum(Arc::new(Threshold::new(5, 1, 3)))
                    .with_read_mode(ReadMode::FastUnanimous);
                SwmrNode::new(cfg, 0)
            })
            .collect();
        let mut net = MiniNet::new(nodes);
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.node(2).fast_reads(), 0);
        assert_eq!(net.node(2).write_backs(), 1, "write-back still required");
        assert_eq!(
            net.take_responses(),
            vec![(OpId(0), RegisterResp::ReadOk(0))]
        );
    }

    #[test]
    fn fast_reads_off_keeps_two_phase_reads() {
        let mut net = cluster(5, true);
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(net.messages_sent(), 4 * (5 - 1), "flag off: 2 rounds");
        assert_eq!(net.node(3).fast_reads(), 0);
        assert_eq!(net.node(3).write_backs(), 1);
    }

    fn relay_cluster(n: usize) -> MiniNet<SwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| {
                let cfg =
                    SwmrConfig::new(n, ProcessId(i), ProcessId(0)).with_read_mode(ReadMode::Relay);
                SwmrNode::new(cfg, 0u32)
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn relay_read_returns_written_value() {
        let mut net = relay_cluster(5);
        net.invoke(0, RegisterOp::Write(8));
        net.run_to_quiescence();
        net.take_responses();
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(8))]
        );
        assert_eq!(net.node(2).relay_reads(), 1);
        assert_eq!(net.node(2).write_backs(), 0, "relay never writes back");
        assert_eq!(net.node(2).fast_reads(), 0);
    }

    #[test]
    fn relay_read_costs_n_squared_minus_one_messages() {
        let mut net = relay_cluster(5);
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        // query (n−1) + forwards (n−1)² + replies (n−1) = n² − 1; the
        // straggler forwards past a completed round are recorded silently,
        // so the loss-free run has no echoes.
        assert_eq!(net.messages_sent(), 5 * 5 - 1);
        assert_eq!(
            net.take_responses(),
            vec![(OpId(0), RegisterResp::ReadOk(0))]
        );
    }

    #[test]
    fn relay_single_node_read_completes_without_messages() {
        let mut net = relay_cluster(1);
        net.invoke(0, RegisterOp::Write(5));
        net.invoke(0, RegisterOp::Read);
        assert_eq!(net.messages_sent(), 0);
        assert_eq!(
            net.take_responses(),
            vec![
                (OpId(0), RegisterResp::WriteOk),
                (OpId(1), RegisterResp::ReadOk(5)),
            ]
        );
        assert_eq!(net.node(0).relay_reads(), 1);
    }

    #[test]
    fn relay_read_spreads_a_partially_propagated_write() {
        // The write reached only {0,1,2}; a relay read from stale p3 must
        // still return it: every reply quorum's forwards intersect the
        // write quorum, so every reply label is ≥ the completed write's.
        let mut net = relay_cluster(5);
        net.set_drop_filter(|_, to, _| to.index() >= 3);
        net.invoke(0, RegisterOp::Write(1));
        net.run_to_quiescence();
        net.take_responses();
        net.clear_drop_filter();
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(1))]
        );
        assert_eq!(net.node(3).relay_reads(), 1);
    }

    #[test]
    fn relay_read_completes_with_minority_crashed() {
        let mut net = relay_cluster(5);
        net.invoke(0, RegisterOp::Write(4));
        net.run_to_quiescence();
        net.take_responses();
        net.crash(3);
        net.crash(4);
        net.invoke(1, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(4))]
        );
    }

    #[test]
    fn relay_read_survives_lossy_links_via_retransmission() {
        let nodes: Vec<SwmrNode<u32>> = (0..3)
            .map(|i| {
                let cfg = SwmrConfig::new(3, ProcessId(i), ProcessId(0))
                    .with_read_mode(ReadMode::Relay)
                    .with_retransmit(1_000);
                SwmrNode::new(cfg, 0)
            })
            .collect();
        let mut net = MiniNet::new(nodes);
        // Lose the first copy of every (from, to) pair; reader-driven
        // retransmission plus forward echoes must heal every round.
        net.set_drop_filter({
            let mut dropped = std::collections::HashSet::new();
            move |from, to, _| dropped.insert((from, to))
        });
        net.invoke(1, RegisterOp::Read);
        net.run_to_quiescence();
        for _ in 0..6 {
            net.fire_timers(1);
            net.run_to_quiescence();
        }
        assert_eq!(
            net.take_responses(),
            vec![(OpId(0), RegisterResp::ReadOk(0))]
        );
    }

    #[test]
    fn relay_restart_clears_round_state_and_read_still_completes() {
        let mut net = relay_cluster(5);
        net.invoke(0, RegisterOp::Write(6));
        net.run_to_quiescence();
        net.take_responses();
        // p4 crashes and rejoins mid-fleet; its relay bookkeeping is gone
        // but its persisted replica still answers rounds correctly.
        net.crash(4);
        net.restart(4);
        net.run_to_quiescence();
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(6))]
        );
    }

    #[test]
    fn relay_reader_restart_aborts_the_read() {
        let mut net = relay_cluster(5);
        net.set_drop_filter(|_, _, _| true); // strand the relay round
        net.invoke(2, RegisterOp::Read);
        assert!(net.node(2).is_busy());
        net.crash(2);
        net.clear_drop_filter();
        net.restart(2);
        net.run_to_quiescence();
        assert!(!net.node(2).is_busy());
        assert!(net.take_responses().is_empty(), "lost ops never respond");
        // The node still serves fresh reads afterwards.
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses(),
            vec![(OpId(1), RegisterResp::ReadOk(0))]
        );
    }

    fn epilogue_cluster(n: usize) -> MiniNet<SwmrNode<u32>> {
        let nodes = (0..n)
            .map(|i| {
                let cfg = SwmrConfig::new(n, ProcessId(i), ProcessId(0)).with_write_epilogue(true);
                SwmrNode::new(cfg, 0u32)
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn epilogue_resumes_crash_interrupted_write() {
        let mut net = epilogue_cluster(5);
        net.set_drop_filter(|_, _, _| true); // strand the write broadcast
        net.invoke(0, RegisterOp::Write(9));
        assert!(net.node(0).is_busy());
        net.crash(0);
        net.clear_drop_filter();
        net.restart(0);
        net.run_to_quiescence();
        // The epilogue rolled the write forward: the client is acked and
        // the value reached a write quorum.
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
        let fresh = (0..5)
            .filter(|&i| net.node(i).replica_state() == (1, 9))
            .count();
        assert!(fresh >= 3, "write quorum holds the resumed write");
    }

    #[test]
    fn epilogue_intent_clears_after_resolution() {
        let mut net = epilogue_cluster(3);
        net.set_drop_filter(|_, _, _| true);
        net.invoke(0, RegisterOp::Write(4));
        net.crash(0);
        net.clear_drop_filter();
        net.restart(0);
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
        // A second crash/restart must not replay the already-resolved
        // write: the intent was cleared with the WriteOk.
        net.crash(0);
        net.restart(0);
        net.run_to_quiescence();
        assert!(net.take_responses().is_empty(), "no double response");
    }

    #[test]
    fn epilogue_survives_repeated_crashes() {
        let mut net = epilogue_cluster(5);
        net.set_drop_filter(|_, _, _| true);
        net.invoke(0, RegisterOp::Write(6));
        net.crash(0);
        // First restart still can't reach anyone: the resumed write
        // strands again, and a second crash re-persists nothing new —
        // the intent simply survives.
        net.restart(0);
        net.run_to_quiescence();
        assert!(net.take_responses().is_empty(), "still partitioned");
        net.crash(0);
        net.clear_drop_filter();
        net.restart(0);
        net.run_to_quiescence();
        assert_eq!(net.take_responses(), vec![(OpId(0), RegisterResp::WriteOk)]);
    }

    #[test]
    fn epilogue_off_keeps_abort_semantics() {
        let mut net = cluster(5, true);
        net.set_drop_filter(|_, _, _| true);
        net.invoke(0, RegisterOp::Write(9));
        net.crash(0);
        net.clear_drop_filter();
        net.restart(0);
        net.run_to_quiescence();
        assert!(
            net.take_responses().is_empty(),
            "flag off: op stays aborted"
        );
    }

    #[test]
    fn config_validation_panics_on_mismatched_quorum() {
        let result = std::panic::catch_unwind(|| {
            let cfg = SwmrConfig::new(3, ProcessId(0), ProcessId(0))
                .with_quorum(Arc::new(Majority::new(5)));
            SwmrNode::new(cfg, 0u32)
        });
        assert!(result.is_err());
    }
}
