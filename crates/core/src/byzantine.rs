//! Byzantine fault tolerance via masking quorums (Malkhi & Reiter,
//! *Byzantine Quorum Systems*, 1997/98 — the follow-up line of work the
//! Dijkstra Prize account singles out: "One key step was phrasing the
//! construction in terms of general quorums … and to consider Byzantine
//! failures").
//!
//! The crash-tolerant emulation trusts every reply; a Byzantine replica can
//! lie. The *threshold masking quorum* fix, for `b` Byzantine replicas out
//! of `n ≥ 4b + 1`:
//!
//! * quorums have size `q = ⌈(n + 2b + 1) / 2⌉` (with `n = 4b + 1`,
//!   `q = 3b + 1 = n − b`, so waiting for `q` replies stays live even if
//!   all `b` liars stay silent);
//! * two quorums intersect in `≥ 2b + 1` replicas, of which `≥ b + 1` are
//!   honest — so among any read quorum's replies, the latest completed
//!   write is *vouched for* by at least `b + 1` identical `(label, value)`
//!   pairs, while any fabricated pair has at most `b` vouchers;
//! * a reader therefore returns the **highest-labelled pair reported
//!   identically by at least `b + 1` replicas**, write-backs it, done.
//!
//! The writer is assumed correct (single-writer model, as in Malkhi–Reiter's
//! basic construction); replicas may lie arbitrarily. For experiments, a
//! node can be constructed with a [`LieStrategy`] that corrupts its replica
//! role — the "Byzantine replica" is the same state machine with its
//! honesty knob turned off, so the simulator needs no special support.
//!
//! The companion experiment (see `tests/byzantine.rs` and the `fig_quorum`
//! notes) shows the crash-tolerant majority protocol returning fabricated
//! values under the same liars that the masking protocol shrugs off.

// The declared phase graph (see the `phase-graph` lint rule) — masking
// quorums change thresholds and reply filtering, not phase structure, so
// the graph matches the crash-tolerant SWMR protocol.
// abd-lint: phase-spec(byzantine):
//   Invoke -> Query, Invoke -> Write, Invoke -> WriteBack, Invoke -> Done,
//   Query -> WriteBack, Query -> Done,
//   Write -> Done, WriteBack -> Done,
//   Restart -> Recovery, Recovery -> Idle

use crate::context::{Effects, Protocol, TimerKey};
use crate::msg::{RegisterMsg, RegisterOp, RegisterResp};
use crate::phase::PhaseTracker;
use crate::retransmit::{BackoffPolicy, Retransmitter};
use crate::types::{Nanos, OpId, ProcessId, RegisterError, SeqNo};
use std::collections::VecDeque;

/// Wire message of the Byzantine-tolerant SWMR protocol (same shapes as the
/// crash-tolerant one).
pub type ByzMsg<V> = RegisterMsg<SeqNo, V>;

/// How a Byzantine replica lies in its replica role.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LieStrategy {
    /// Always report the initial state (label 0), hiding every write.
    ReportStale,
    /// Report a fabricated sky-high label with a bogus value — the attack
    /// that poisons max-label selection without vouching.
    ForgeLabel,
    /// Never answer queries or acknowledge updates (Byzantine silence).
    Silent,
}

/// Configuration of one Byzantine-tolerant node.
#[derive(Clone, Debug)]
pub struct ByzConfig {
    /// Cluster size (must satisfy `n >= 4b + 1`).
    pub n: usize,
    /// This node's id.
    pub me: ProcessId,
    /// The (trusted) writer's id.
    pub writer: ProcessId,
    /// Maximum number of Byzantine replicas tolerated.
    pub b: usize,
    /// Retransmission policy (`None` = reliable links).
    pub retransmit: Option<BackoffPolicy>,
    /// When `Some`, this node's replica role lies per the strategy.
    pub lie: Option<LieStrategy>,
}

impl ByzConfig {
    /// An honest node in a cluster tolerating `b` Byzantine replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 4b + 1`.
    pub fn new(n: usize, me: ProcessId, writer: ProcessId, b: usize) -> Self {
        assert!(n > 4 * b, "masking quorums need n >= 4b+1 (n={n}, b={b})");
        ByzConfig {
            n,
            me,
            writer,
            b,
            retransmit: None,
            lie: None,
        }
    }

    /// Turns this node Byzantine with the given strategy.
    pub fn with_lie(mut self, lie: LieStrategy) -> Self {
        self.lie = Some(lie);
        self
    }

    /// Enables adaptive retransmission for lossy links (exponential
    /// backoff from `every`, capped, jittered; see [`BackoffPolicy::new`]).
    pub fn with_retransmit(mut self, every: Nanos) -> Self {
        self.retransmit = Some(BackoffPolicy::new(every));
        self
    }

    /// Sets an explicit retransmission policy.
    pub fn with_backoff(mut self, policy: BackoffPolicy) -> Self {
        self.retransmit = Some(policy);
        self
    }

    /// Quorum size `⌈(n + 2b + 1) / 2⌉`.
    pub fn quorum_size(&self) -> usize {
        crate::quorum::masking_threshold(self.n, self.b)
    }
}

#[derive(Clone, Debug)]
enum Pending<V> {
    Write {
        op: OpId,
        ph: PhaseTracker,
        seq: SeqNo,
        value: V,
    },
    /// Read query: collect *identical pair* votes, keyed by `(label, value)`.
    Query {
        op: OpId,
        ph: PhaseTracker,
        votes: Vec<(SeqNo, V, usize)>,
    },
    WriteBack {
        op: OpId,
        ph: PhaseTracker,
        label: SeqNo,
        value: V,
    },
}

/// Post-restart catch-up query phase. Recovery collects *votes* and picks
/// the masked choice, exactly like a read's query round — catching up from
/// raw max-label replies would let `b` liars poison the rebooted replica
/// (stable-storage model; see [`crate::swmr`] module docs).
#[derive(Clone, Debug)]
struct Recovery<V> {
    ph: PhaseTracker,
    votes: Vec<(SeqNo, V, usize)>,
}

/// One node of the Byzantine-tolerant single-writer emulation.
///
/// # Examples
///
/// ```
/// use abd_core::byzantine::{ByzConfig, ByzNode};
/// use abd_core::context::{Effects, Protocol};
/// use abd_core::msg::{RegisterOp, RegisterResp};
/// use abd_core::types::{OpId, ProcessId};
///
/// // b = 0 degenerates to the crash-tolerant protocol; n = 1 completes locally.
/// let mut node = ByzNode::new(ByzConfig::new(1, ProcessId(0), ProcessId(0), 0), 0u8);
/// let mut fx = Effects::new();
/// node.on_invoke(OpId(0), RegisterOp::Write(9), &mut fx);
/// node.on_invoke(OpId(1), RegisterOp::Read, &mut fx);
/// assert_eq!(fx.responses[1].1, RegisterResp::ReadOk(9));
/// ```
#[derive(Clone, Debug)]
pub struct ByzNode<V> {
    cfg: ByzConfig,
    label: SeqNo,
    value: V,
    seq: SeqNo,
    next_uid: u64,
    pending: Option<Pending<V>>,
    queue: VecDeque<(OpId, RegisterOp<V>)>,
    /// Fabrication counter for the `ForgeLabel` strategy.
    forged: u64,
    rtx: Retransmitter,
    recovering: Option<Recovery<V>>,
}

impl<V: Clone + std::fmt::Debug + Eq + Send + 'static> ByzNode<V> {
    /// Creates a node holding `initial` under label 0.
    pub fn new(cfg: ByzConfig, initial: V) -> Self {
        assert!(cfg.me.index() < cfg.n, "node id out of range");
        let rtx = Retransmitter::new(cfg.retransmit, cfg.me);
        ByzNode {
            cfg,
            label: 0,
            value: initial,
            seq: 0,
            next_uid: 0,
            pending: None,
            queue: VecDeque::new(),
            forged: 0,
            rtx,
            recovering: None,
        }
    }

    /// Replica state (honest view).
    pub fn replica_state(&self) -> (SeqNo, V) {
        (self.label, self.value.clone())
    }

    /// Whether this node is configured to lie.
    pub fn is_byzantine(&self) -> bool {
        self.cfg.lie.is_some()
    }

    /// Whether the node is catching up after a restart.
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// Messages this node has retransmitted over its lifetime.
    pub fn retransmissions(&self) -> u64 {
        self.rtx.retransmissions()
    }

    fn fresh_uid(&mut self) -> u64 {
        self.next_uid += 1;
        self.next_uid
    }

    fn quorum_met(&self, ph: &PhaseTracker) -> bool {
        ph.responders().len() >= self.cfg.quorum_size()
    }

    fn broadcast(&self, msg: ByzMsg<V>, fx: &mut Effects<ByzMsg<V>, RegisterResp<V>>) {
        for i in 0..self.cfg.n {
            let p = ProcessId(i);
            if p != self.cfg.me {
                fx.send(p, msg.clone());
            }
        }
    }

    fn arm_timer(&mut self, uid: u64, fx: &mut Effects<ByzMsg<V>, RegisterResp<V>>) {
        self.rtx.arm(uid, fx);
    }

    /// Completes the post-restart catch-up: adopt the masked choice (never
    /// a raw max — `b` liars answered too) and, on the writer, re-anchor
    /// the sequence counter so no label is ever reused.
    fn finish_recovery(
        &mut self,
        votes: &[(SeqNo, V, usize)],
        fx: &mut Effects<ByzMsg<V>, RegisterResp<V>>,
    ) {
        self.recovering = None;
        let (label, value) = self.masked_choice(votes);
        if label > self.label {
            self.label = label;
            self.value = value;
        }
        if self.cfg.me == self.cfg.writer {
            self.seq = self.seq.max(self.label);
        }
        if self.pending.is_none() {
            if let Some((next_op, next_input)) = self.queue.pop_front() {
                self.begin(next_op, next_input, fx);
            }
        }
    }

    fn finish(
        &mut self,
        op: OpId,
        resp: RegisterResp<V>,
        fx: &mut Effects<ByzMsg<V>, RegisterResp<V>>,
    ) {
        self.pending = None;
        fx.respond(op, resp);
        if let Some((next_op, next_input)) = self.queue.pop_front() {
            self.begin(next_op, next_input, fx);
        }
    }

    fn begin(
        &mut self,
        op: OpId,
        input: RegisterOp<V>,
        fx: &mut Effects<ByzMsg<V>, RegisterResp<V>>,
    ) {
        match input {
            RegisterOp::Write(v) => {
                if self.cfg.me != self.cfg.writer {
                    fx.respond(
                        op,
                        RegisterResp::Err(RegisterError::NotWriter {
                            invoked_on: self.cfg.me,
                            writer: self.cfg.writer,
                        }),
                    );
                    if self.pending.is_none() {
                        if let Some((next_op, next_input)) = self.queue.pop_front() {
                            self.begin(next_op, next_input, fx);
                        }
                    }
                    return;
                }
                self.seq += 1;
                let seq = self.seq;
                // abd-lint: allow(tag-monotonicity): the single writer mints `seq` by incrementing its own counter on the line above, so the new label is strictly larger by construction.
                self.label = seq;
                self.value = v.clone();
                let uid = self.fresh_uid();
                let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
                if self.quorum_met(&ph) {
                    self.finish(op, RegisterResp::WriteOk, fx);
                    return;
                }
                self.pending = Some(Pending::Write {
                    op,
                    ph,
                    seq,
                    value: v.clone(),
                });
                self.broadcast(
                    RegisterMsg::Update {
                        uid,
                        label: seq,
                        value: v,
                    },
                    fx,
                );
                self.arm_timer(uid, fx);
            }
            // The Byzantine protocol has no weaker tiers: a `ReadAt` at any
            // level is served atomically (stronger than requested is safe).
            RegisterOp::Read | RegisterOp::ReadAt(_) => {
                let uid = self.fresh_uid();
                let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
                // Our own (honest) replica votes for its pair.
                let votes = vec![(self.label, self.value.clone(), 1usize)];
                if self.quorum_met(&ph) {
                    let (label, value) = (self.label, self.value.clone());
                    self.enter_write_back(op, label, value, fx);
                    return;
                }
                self.pending = Some(Pending::Query { op, ph, votes });
                self.broadcast(RegisterMsg::Query { uid }, fx);
                self.arm_timer(uid, fx);
            }
        }
    }

    /// Highest-labelled pair with at least `b + 1` identical votes. Falls
    /// back to the highest pair with *any* honest-possible support if no
    /// pair reaches the threshold — with a correct writer and `q` replies
    /// this cannot happen (the latest completed write always has `b + 1`
    /// honest vouchers in the quorum), so the fallback also counts as a
    /// detected anomaly.
    fn masked_choice(&self, votes: &[(SeqNo, V, usize)]) -> (SeqNo, V) {
        votes
            .iter()
            .filter(|(_, _, support)| *support > self.cfg.b)
            .max_by_key(|(label, _, _)| *label)
            .map(|(l, v, _)| (*l, v.clone()))
            .unwrap_or_else(|| (self.label, self.value.clone()))
    }

    fn enter_write_back(
        &mut self,
        op: OpId,
        label: SeqNo,
        value: V,
        fx: &mut Effects<ByzMsg<V>, RegisterResp<V>>,
    ) {
        if label > self.label {
            self.label = label;
            self.value = value.clone();
        }
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        if self.quorum_met(&ph) {
            self.finish(op, RegisterResp::ReadOk(value), fx);
            return;
        }
        self.pending = Some(Pending::WriteBack {
            op,
            ph,
            label,
            value: value.clone(),
        });
        self.broadcast(RegisterMsg::Update { uid, label, value }, fx);
        self.arm_timer(uid, fx);
    }

    /// The replica-role reply, honest or lying.
    fn replica_reply(&mut self, uid: u64) -> Option<ByzMsg<V>> {
        match self.cfg.lie {
            None => Some(RegisterMsg::QueryReply {
                uid,
                label: self.label,
                value: self.value.clone(),
            }),
            Some(LieStrategy::ReportStale) => {
                // Report label 0 with whatever we were initialized to —
                // pretend no write ever happened. (We keep the current
                // value but label 0: an *inconsistent* fabrication.)
                Some(RegisterMsg::QueryReply {
                    uid,
                    label: 0,
                    value: self.value.clone(),
                })
            }
            Some(LieStrategy::ForgeLabel) => {
                self.forged += 1;
                Some(RegisterMsg::QueryReply {
                    uid,
                    label: u64::MAX - self.forged, // absurdly new, never vouched
                    value: self.value.clone(),     // bogus payload
                })
            }
            Some(LieStrategy::Silent) => None,
        }
    }

    fn phase_message(&self) -> Option<ByzMsg<V>> {
        match self.pending.as_ref()? {
            Pending::Write { ph, seq, value, .. } => Some(RegisterMsg::Update {
                uid: ph.uid(),
                label: *seq,
                value: value.clone(),
            }),
            Pending::Query { ph, .. } => Some(RegisterMsg::Query { uid: ph.uid() }),
            Pending::WriteBack {
                ph, label, value, ..
            } => Some(RegisterMsg::Update {
                uid: ph.uid(),
                label: *label,
                value: value.clone(),
            }),
        }
    }
}

impl<V: Clone + std::fmt::Debug + Eq + Send + 'static> Protocol for ByzNode<V> {
    type Msg = ByzMsg<V>;
    type Op = RegisterOp<V>;
    type Resp = RegisterResp<V>;

    fn id(&self) -> ProcessId {
        self.cfg.me
    }

    fn on_invoke(
        &mut self,
        op: OpId,
        input: RegisterOp<V>,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        if self.pending.is_some() || self.recovering.is_some() {
            self.queue.push_back((op, input));
        } else {
            self.begin(op, input, fx);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: ByzMsg<V>,
        fx: &mut Effects<Self::Msg, Self::Resp>,
    ) {
        match msg {
            RegisterMsg::Query { uid } => {
                if let Some(reply) = self.replica_reply(uid) {
                    fx.send(from, reply);
                }
            }
            RegisterMsg::Update { uid, label, value } => {
                match self.cfg.lie {
                    Some(LieStrategy::Silent) => {} // no ack
                    Some(_) => {
                        // Liars ack but do not faithfully store.
                        // abd-lint: allow(persist-before-ack): this is the *fault model*, not the protocol — a Byzantine replica acknowledging state it never stored is exactly the behavior masking quorums are sized to tolerate.
                        fx.send(from, RegisterMsg::UpdateAck { uid });
                    }
                    None => {
                        if label > self.label {
                            self.label = label;
                            self.value = value;
                        }
                        fx.send(from, RegisterMsg::UpdateAck { uid });
                    }
                }
            }
            RegisterMsg::QueryReply { uid, label, value } => {
                let b = self.cfg.b;
                let q = self.cfg.quorum_size();
                if let Some(rec) = self.recovering.as_mut() {
                    if !rec.ph.record(from, uid) {
                        return;
                    }
                    match rec
                        .votes
                        .iter_mut()
                        .find(|(l, v, _)| *l == label && *v == value)
                    {
                        Some(entry) => entry.2 += 1,
                        None => rec.votes.push((label, value, 1)),
                    }
                    if rec.ph.responders().len() >= q {
                        if let Some(rec) = self.recovering.take() {
                            self.rtx.disarm(uid, fx);
                            self.finish_recovery(&rec.votes, fx);
                        }
                    }
                    return;
                }
                let done = match self.pending.as_mut() {
                    Some(Pending::Query { op, ph, votes }) => {
                        if !ph.record(from, uid) {
                            return;
                        }
                        match votes
                            .iter_mut()
                            .find(|(l, v, _)| *l == label && *v == value)
                        {
                            Some(entry) => entry.2 += 1,
                            None => votes.push((label, value, 1)),
                        }
                        let _ = b;
                        if ph.responders().len() >= q {
                            Some(*op)
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(op) = done {
                    let Some(Pending::Query { votes, .. }) = self.pending.take() else {
                        unreachable!()
                    };
                    self.rtx.disarm(uid, fx);
                    let (label, value) = self.masked_choice(&votes);
                    self.enter_write_back(op, label, value, fx);
                }
            }
            RegisterMsg::UpdateAck { uid } => {
                let q = self.cfg.quorum_size();
                let done = match self.pending.as_mut() {
                    Some(Pending::Write { op, ph, .. }) => {
                        if ph.record(from, uid) && ph.responders().len() >= q {
                            Some((*op, RegisterResp::WriteOk))
                        } else {
                            None
                        }
                    }
                    Some(Pending::WriteBack { op, ph, value, .. }) => {
                        if ph.record(from, uid) && ph.responders().len() >= q {
                            Some((*op, RegisterResp::ReadOk(value.clone())))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((op, resp)) = done {
                    self.rtx.disarm(uid, fx);
                    self.finish(op, resp, fx);
                }
            }
            // No relay read mode under Byzantine faults: a liar's forward
            // could poison every reply in the round. Ignore strays.
            RegisterMsg::RelayQuery { .. }
            | RegisterMsg::RelayFwd { .. }
            | RegisterMsg::RelayReply { .. } => {}
        }
    }

    fn on_timer(&mut self, key: TimerKey, fx: &mut Effects<Self::Msg, Self::Resp>) {
        if let Some(rec) = self.recovering.as_ref() {
            if rec.ph.uid() != key.0 {
                return;
            }
            let (uid, missing) = (rec.ph.uid(), rec.ph.missing());
            self.rtx
                .fire(key.0, &missing, RegisterMsg::Query { uid }, fx);
            return;
        }
        let Some(pending) = self.pending.as_ref() else {
            return;
        };
        let ph = match pending {
            Pending::Write { ph, .. }
            | Pending::Query { ph, .. }
            | Pending::WriteBack { ph, .. } => ph,
        };
        if ph.uid() != key.0 {
            return;
        }
        let missing = ph.missing();
        if let Some(msg) = self.phase_message() {
            self.rtx.fire(key.0, &missing, msg, fx);
        }
    }

    fn on_restart(&mut self, fx: &mut Effects<Self::Msg, Self::Resp>) {
        // Stable storage: the replica pair, the writer's sequence counter
        // and the uid counter survive; in-flight operation state does not
        // (see the crate::swmr module docs for the soundness argument).
        // Liars restart too — their recovery is harmless noise since they
        // answer from the lie strategy, not from adopted state.
        self.pending = None;
        self.queue.clear();
        self.rtx.reset();
        let uid = self.fresh_uid();
        let ph = PhaseTracker::new(uid, self.cfg.n, self.cfg.me);
        let votes = vec![(self.label, self.value.clone(), 1usize)];
        if self.quorum_met(&ph) {
            return; // Single-node cluster: nothing to catch up from.
        }
        self.recovering = Some(Recovery { ph, votes });
        self.broadcast(RegisterMsg::Query { uid }, fx);
        self.arm_timer(uid, fx);
    }
}

/// Quick sanity map from `b` to the minimum cluster and quorum sizes.
pub fn masking_parameters(b: usize) -> (usize, usize) {
    let n = 4 * b + 1;
    (n, crate::quorum::masking_threshold(n, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MiniNet;

    fn cluster(b: usize, liars: &[(usize, LieStrategy)]) -> MiniNet<ByzNode<u64>> {
        let n = 4 * b + 1;
        let nodes = (0..n)
            .map(|i| {
                let mut cfg = ByzConfig::new(n, ProcessId(i), ProcessId(0), b);
                if let Some((_, lie)) = liars.iter().find(|(id, _)| *id == i) {
                    cfg = cfg.with_lie(*lie);
                }
                ByzNode::new(cfg, 0u64)
            })
            .collect();
        MiniNet::new(nodes)
    }

    #[test]
    fn parameters() {
        assert_eq!(masking_parameters(0), (1, 1));
        assert_eq!(masking_parameters(1), (5, 4));
        assert_eq!(masking_parameters(2), (9, 7));
    }

    #[test]
    fn honest_cluster_behaves_like_abd() {
        let mut net = cluster(1, &[]);
        net.invoke(0, RegisterOp::Write(5));
        net.run_to_quiescence();
        net.invoke(3, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r[1].1, RegisterResp::ReadOk(5));
    }

    #[test]
    fn stale_liar_cannot_hide_a_write() {
        // b = 1, n = 5, q = 4: replica 1 always claims nothing was written.
        // (Low id so the FIFO executor always includes it in read quorums.)
        let mut net = cluster(1, &[(1, LieStrategy::ReportStale)]);
        net.invoke(0, RegisterOp::Write(42));
        net.run_to_quiescence();
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r[1].1, RegisterResp::ReadOk(42), "the lie must be masked");
    }

    #[test]
    fn forged_label_cannot_poison_a_read() {
        // Replica 1 reports label u64::MAX with a bogus value; it gets at
        // most its own vote, below the b+1 threshold.
        let mut net = cluster(1, &[(1, LieStrategy::ForgeLabel)]);
        net.invoke(0, RegisterOp::Write(7));
        net.run_to_quiescence();
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(
            r[1].1,
            RegisterResp::ReadOk(7),
            "forged label must be filtered"
        );
    }

    #[test]
    fn silent_liar_does_not_block_liveness() {
        // q = n - b, so a silent Byzantine replica cannot stall quorums.
        let mut net = cluster(1, &[(3, LieStrategy::Silent)]);
        net.invoke(0, RegisterOp::Write(9));
        net.run_to_quiescence();
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r[0].1, RegisterResp::WriteOk);
        assert_eq!(r[1].1, RegisterResp::ReadOk(9));
    }

    #[test]
    fn b2_tolerates_two_coordinated_liars() {
        let mut net = cluster(
            2,
            &[(1, LieStrategy::ForgeLabel), (2, LieStrategy::ForgeLabel)],
        );
        net.invoke(0, RegisterOp::Write(11));
        net.run_to_quiescence();
        net.invoke(4, RegisterOp::Read);
        net.run_to_quiescence();
        let r = net.take_responses();
        assert_eq!(r[1].1, RegisterResp::ReadOk(11));
    }

    #[test]
    fn crash_tolerant_majority_is_poisoned_by_the_same_liar() {
        // The contrast experiment: the plain ABD read (majority + raw max)
        // believes the forged label. We emulate it by setting b = 0 in the
        // masked choice (threshold 1) on a 5-node cluster with a liar.
        let n = 5;
        let nodes = (0..n)
            .map(|i| {
                // b = 0: quorum 3, votes threshold 1 — i.e. plain ABD.
                let mut cfg = ByzConfig::new(n, ProcessId(i), ProcessId(0), 0);
                if i == 1 {
                    cfg = cfg.with_lie(LieStrategy::ForgeLabel);
                }
                ByzNode::new(cfg, 0u64)
            })
            .collect();
        let mut net = MiniNet::new(nodes);
        net.invoke(0, RegisterOp::Write(7));
        net.run_to_quiescence();
        // Keep reading until a quorum includes the liar (deterministic
        // FIFO delivery: first 2 repliers + self make the quorum, so make
        // the liar adjacent by reading from node 3).
        let mut poisoned = false;
        for reader in [3usize, 2, 1] {
            net.invoke(reader, RegisterOp::Read);
            net.run_to_quiescence();
            let r = net.take_responses();
            if let Some((_, RegisterResp::ReadOk(v))) = r.last() {
                if *v != 7 {
                    poisoned = true;
                }
            }
        }
        assert!(
            poisoned,
            "without masking quorums a single forged label should poison some read"
        );
    }

    #[test]
    #[should_panic(expected = "n >= 4b+1")]
    fn undersized_cluster_rejected() {
        ByzConfig::new(4, ProcessId(0), ProcessId(0), 1);
    }

    #[test]
    fn restart_recovery_is_not_poisoned_by_a_liar() {
        // Node 2 crashes, misses a write, and restarts while replica 1
        // forges sky-high labels. The catch-up query phase must adopt the
        // masked choice — the real write — not the forgery.
        let mut net = cluster(1, &[(1, LieStrategy::ForgeLabel)]);
        net.invoke(0, RegisterOp::Write(42));
        net.run_to_quiescence();
        net.crash(2);
        net.invoke(0, RegisterOp::Write(43));
        net.run_to_quiescence();
        net.restart(2);
        net.run_to_quiescence();
        assert!(!net.node(2).is_recovering());
        assert_eq!(net.node(2).replica_state(), (2, 43));
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses().last().unwrap().1,
            RegisterResp::ReadOk(43)
        );
    }

    #[test]
    fn writer_restart_does_not_reuse_labels() {
        let mut net = cluster(1, &[]);
        net.invoke(0, RegisterOp::Write(5));
        net.run_to_quiescence();
        net.crash(0);
        net.restart(0);
        net.run_to_quiescence();
        net.invoke(0, RegisterOp::Write(6));
        net.run_to_quiescence();
        // Label 1 was consumed pre-crash; the new write must use label 2.
        assert_eq!(net.node(3).replica_state(), (2, 6));
        net.invoke(2, RegisterOp::Read);
        net.run_to_quiescence();
        assert_eq!(
            net.take_responses().last().unwrap().1,
            RegisterResp::ReadOk(6)
        );
    }
}
