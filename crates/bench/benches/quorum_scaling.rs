//! **B2 — scaling with cluster size and quorum family.**
//!
//! Wall-clock operation latency on the thread runtime as `n` grows, and
//! majority vs grid quorums at `n = 9`. Message *count* grows linearly in
//! `n` (the broadcast), but latency should grow only mildly: the client
//! still waits for the fastest quorum.

use abd_core::msg::RegisterOp;
use abd_core::mwmr::{MwmrConfig, MwmrNode};
use abd_core::quorum::{Grid, QuorumSystem};
use abd_core::types::ProcessId;
use abd_runtime::cluster::{Cluster, Jitter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn cluster_with(n: usize, quorum: Option<Arc<dyn QuorumSystem>>) -> Cluster<MwmrNode<u64>> {
    Cluster::spawn(
        (0..n)
            .map(|i| {
                let mut cfg = MwmrConfig::new(n, ProcessId(i));
                if let Some(q) = &quorum {
                    cfg = cfg.with_quorum(Arc::clone(q));
                }
                MwmrNode::new(cfg, 0u64)
            })
            .collect(),
        Jitter::None,
    )
}

fn bench_quorum_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_scaling");
    group.sample_size(20);

    for n in [3usize, 5, 9, 17] {
        let cluster = cluster_with(n, None);
        let client = cluster.client(0);
        let mut v = 0u64;
        group.bench_function(format!("majority_write/n={n}"), |b| {
            b.iter(|| {
                v += 1;
                client.invoke(RegisterOp::Write(v))
            })
        });
    }

    // Majority vs grid at n = 9.
    let grid: Arc<dyn QuorumSystem> = Arc::new(Grid::new(3, 3));
    let cluster = cluster_with(9, Some(grid));
    let client = cluster.client(0);
    let mut v = 0u64;
    group.bench_function("grid3x3_write/n=9", |b| {
        b.iter(|| {
            v += 1;
            client.invoke(RegisterOp::Write(v))
        })
    });
    group.bench_function("grid3x3_read/n=9", |b| {
        b.iter(|| client.invoke(RegisterOp::Read))
    });

    group.finish();
}

criterion_group!(benches, bench_quorum_scaling);
criterion_main!(benches);
