//! **B1 — wall-clock cost of register operations on the thread runtime.**
//!
//! Measures the end-to-end latency of the emulation's operations on real
//! threads and channels: single-writer and multi-writer, reads and writes.
//! The expected shape mirrors the round-trip counts: SWMR writes (1 round
//! trip) are the cheapest; SWMR reads and both MWMR operations (2 round
//! trips) cluster together above them.

use abd_core::msg::RegisterOp;
use abd_core::mwmr::{MwmrConfig, MwmrNode};
use abd_core::swmr::{SwmrConfig, SwmrNode};
use abd_core::types::ProcessId;
use abd_runtime::cluster::{Cluster, Jitter};
use criterion::{criterion_group, criterion_main, Criterion};

fn swmr_cluster(n: usize) -> Cluster<SwmrNode<u64>> {
    Cluster::spawn(
        (0..n)
            .map(|i| SwmrNode::new(SwmrConfig::new(n, ProcessId(i), ProcessId(0)), 0u64))
            .collect(),
        Jitter::None,
    )
}

fn mwmr_cluster(n: usize) -> Cluster<MwmrNode<u64>> {
    Cluster::spawn(
        (0..n)
            .map(|i| MwmrNode::new(MwmrConfig::new(n, ProcessId(i)), 0u64))
            .collect(),
        Jitter::None,
    )
}

fn bench_register_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_ops");
    group.sample_size(30);

    for n in [3usize, 5] {
        let cluster = swmr_cluster(n);
        let writer = cluster.client(0);
        let reader = cluster.client(n - 1);
        let mut v = 0u64;
        group.bench_function(format!("swmr_write/n={n}"), |b| {
            b.iter(|| {
                v += 1;
                writer.invoke(RegisterOp::Write(v))
            })
        });
        group.bench_function(format!("swmr_read/n={n}"), |b| {
            b.iter(|| reader.invoke(RegisterOp::Read))
        });
    }

    for n in [3usize, 5] {
        let cluster = mwmr_cluster(n);
        let writer = cluster.client(1 % n);
        let reader = cluster.client(n - 1);
        let mut v = 0u64;
        group.bench_function(format!("mwmr_write/n={n}"), |b| {
            b.iter(|| {
                v += 1;
                writer.invoke(RegisterOp::Write(v))
            })
        });
        group.bench_function(format!("mwmr_read/n={n}"), |b| {
            b.iter(|| reader.invoke(RegisterOp::Read))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_register_ops);
criterion_main!(benches);
