//! **B4 — shared-memory algorithms: local registers vs the emulation.**
//!
//! The criterion companion to figure F5: counter and snapshot operations
//! over process-local atomic registers and over ABD-emulated registers on
//! a 3-replica thread cluster. The ratio between the two substrates is the
//! wall-clock price of the paper's portability theorem.

use abd_runtime::client::{spawn_kv_cluster, KvRegisterArray, KvStoreClient};
use abd_runtime::cluster::Jitter;
use abd_shmem::array::LocalAtomicArray;
use abd_shmem::counter::Counter;
use abd_shmem::snapshot::{Segment, SnapshotObject};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_shmem(c: &mut Criterion) {
    let mut group = c.benchmark_group("shmem_algorithms");
    group.sample_size(20);
    let n_procs = 3;

    // Counter over local registers.
    {
        let regs = LocalAtomicArray::new(n_procs, 0u64);
        let mut counter = Counter::new(0, regs);
        group.bench_function("counter_increment/local", |b| {
            b.iter(|| counter.increment())
        });
        group.bench_function("counter_value/local", |b| b.iter(|| counter.value()));
    }
    // Counter over the ABD emulation.
    {
        let cluster = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
        let regs = KvRegisterArray::new(KvStoreClient::new(cluster.client(0)), n_procs, 0u64);
        let mut counter = Counter::new(0, regs);
        group.bench_function("counter_increment/abd", |b| b.iter(|| counter.increment()));
        group.bench_function("counter_value/abd", |b| b.iter(|| counter.value()));
    }

    // Snapshot over local registers.
    {
        let regs = LocalAtomicArray::new(n_procs, Segment::initial(n_procs, 0u64));
        let mut snap = SnapshotObject::new(0, regs);
        let mut v = 0u64;
        group.bench_function("snapshot_update/local", |b| {
            b.iter(|| {
                v += 1;
                snap.update(v)
            })
        });
        group.bench_function("snapshot_scan/local", |b| b.iter(|| snap.scan()));
    }
    // Snapshot over the ABD emulation.
    {
        let cluster = spawn_kv_cluster::<u64, Segment<u64>>(3, Jitter::None);
        let regs = KvRegisterArray::new(
            KvStoreClient::new(cluster.client(0)),
            n_procs,
            Segment::initial(n_procs, 0u64),
        );
        let mut snap = SnapshotObject::new(0, regs);
        let mut v = 0u64;
        group.bench_function("snapshot_update/abd", |b| {
            b.iter(|| {
                v += 1;
                snap.update(v)
            })
        });
        group.bench_function("snapshot_scan/abd", |b| b.iter(|| snap.scan()));
    }

    group.finish();
}

criterion_group!(benches, bench_shmem);
criterion_main!(benches);
