//! **B3 — the replicated key-value store under wall-clock load.**
//!
//! Get/put latency on a 3-replica cluster, gets of missing keys (one round
//! instead of two), behaviour with a crashed minority replica, and a
//! multi-threaded mixed workload measuring aggregate throughput.

use abd_runtime::client::{spawn_kv_cluster, KvStoreClient};
use abd_runtime::cluster::Jitter;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn bench_kv(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_store");
    group.sample_size(30);

    let cluster = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
    let kv = KvStoreClient::new(cluster.client(0));
    kv.put(1, 1);

    let mut k = 0u64;
    group.bench_function("put/n=3", |b| {
        b.iter(|| {
            k += 1;
            kv.put(k % 1024, k)
        })
    });
    group.bench_function("get_hit/n=3", |b| b.iter(|| kv.get(1)));
    group.bench_function("get_miss/n=3", |b| b.iter(|| kv.get(u64::MAX)));

    // A crashed minority replica must not change the cost profile.
    let degraded = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
    degraded.crash(2);
    let dkv = KvStoreClient::new(degraded.client(0));
    dkv.put(1, 1);
    group.bench_function("get_hit_one_crashed/n=3", |b| b.iter(|| dkv.get(1)));

    // Aggregate throughput: 4 client threads, 50/50 mix over 256 keys.
    let tcluster = Arc::new(spawn_kv_cluster::<u64, u64>(3, Jitter::None));
    group.throughput(Throughput::Elements(400));
    group.bench_function("mixed_4_threads_400_ops", |b| {
        b.iter(|| {
            let mut joins = Vec::new();
            for t in 0..4usize {
                let kv = KvStoreClient::new(tcluster.client(t % 3));
                joins.push(std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let key = (t as u64 * 37 + i) % 256;
                        if i % 2 == 0 {
                            kv.put(key, i);
                        } else {
                            let _ = kv.get(key);
                        }
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kv);
criterion_main!(benches);
