//! # abd-bench — the experiment harness
//!
//! One binary per table/figure of `EXPERIMENTS.md` (run with
//! `cargo run --release -p abd-bench --bin <name>`), plus criterion
//! wall-clock benches under `benches/`. This library holds the shared
//! plumbing: cluster construction for each protocol variant, latency
//! statistics, and fixed-width table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abd_core::types::Nanos;

/// Simple order statistics over a sample of latencies.
#[derive(Clone, Debug, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Stats {
    /// Computes statistics from raw samples; `None` if empty.
    pub fn from_samples(mut xs: Vec<Nanos>) -> Option<Stats> {
        if xs.is_empty() {
            return None;
        }
        xs.sort_unstable();
        let count = xs.len();
        let mean = xs.iter().sum::<u64>() as f64 / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            xs[idx] as f64
        };
        Some(Stats {
            count,
            mean,
            p50: pct(0.5),
            p99: pct(0.99),
            max: *xs.last().unwrap() as f64,
        })
    }
}

/// A fixed-width text table that renders like the tables in
/// `EXPERIMENTS.md`.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats nanoseconds as microseconds with two decimals.
pub fn us(x: f64) -> String {
    format!("{:.2}", x / 1_000.0)
}

pub mod clusters {
    //! Ready-made cluster builders for each protocol variant.

    use abd_core::msg::{RegisterOp, RegisterResp};
    use abd_core::mwmr::MwmrNode;
    use abd_core::swmr::SwmrNode;
    use abd_core::types::{Nanos, ProcessId};
    use abd_simnet::{Sim, SimConfig};

    /// The protocol variants the experiments sweep.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Variant {
        /// Atomic single-writer ABD (majority quorums + read write-back).
        AtomicSwmr,
        /// Atomic single-writer ABD with the one-round read fast path
        /// (write-back elided on unanimous query quorums).
        FastSwmr,
        /// Atomic single-writer ABD with relay (1.5-round) reads.
        RelaySwmr,
        /// Regular single-writer baseline (no write-back).
        RegularSwmr,
        /// Read-one/write-majority single-writer baseline (not even regular).
        ReadOneSwmr,
        /// Atomic multi-writer ABD.
        AtomicMwmr,
        /// Atomic multi-writer ABD with the one-round read fast path.
        FastMwmr,
        /// Atomic multi-writer ABD with relay (1.5-round) reads.
        RelayMwmr,
        /// Regular multi-writer baseline (no write-back).
        RegularMwmr,
    }

    impl Variant {
        /// Human-readable name used in table rows.
        pub fn name(&self) -> &'static str {
            match self {
                Variant::AtomicSwmr => "ABD atomic (SWMR)",
                Variant::FastSwmr => "ABD atomic, fast reads (SWMR)",
                Variant::RelaySwmr => "ABD atomic, relay reads (SWMR)",
                Variant::RegularSwmr => "regular, no write-back (SWMR)",
                Variant::ReadOneSwmr => "read-one/write-majority (SWMR)",
                Variant::AtomicMwmr => "ABD atomic (MWMR)",
                Variant::FastMwmr => "ABD atomic, fast reads (MWMR)",
                Variant::RelayMwmr => "ABD atomic, relay reads (MWMR)",
                Variant::RegularMwmr => "regular, no write-back (MWMR)",
            }
        }

        /// Whether this is a single-writer variant.
        pub fn is_single_writer(&self) -> bool {
            matches!(
                self,
                Variant::AtomicSwmr
                    | Variant::FastSwmr
                    | Variant::RelaySwmr
                    | Variant::RegularSwmr
                    | Variant::ReadOneSwmr
            )
        }
    }

    /// Builds an n-node single-writer simulation (writer = p0).
    ///
    /// # Panics
    ///
    /// Panics if `variant` is not a SWMR variant.
    pub fn swmr_sim(
        variant: Variant,
        n: usize,
        sim_cfg: SimConfig,
        retransmit: Option<Nanos>,
    ) -> Sim<SwmrNode<u64>> {
        let nodes = (0..n)
            .map(|i| {
                let mut cfg = match variant {
                    Variant::AtomicSwmr => {
                        abd_core::presets::atomic_swmr(n, ProcessId(i), ProcessId(0))
                    }
                    Variant::FastSwmr => {
                        abd_core::presets::fast_swmr(n, ProcessId(i), ProcessId(0))
                    }
                    Variant::RelaySwmr => {
                        abd_core::presets::relay_swmr(n, ProcessId(i), ProcessId(0))
                    }
                    Variant::RegularSwmr => {
                        abd_core::presets::regular_swmr(n, ProcessId(i), ProcessId(0))
                    }
                    Variant::ReadOneSwmr => {
                        abd_core::presets::read_one_swmr(n, ProcessId(i), ProcessId(0))
                    }
                    _ => panic!("{variant:?} is not a SWMR variant"),
                };
                cfg.retransmit = retransmit.map(abd_core::retransmit::BackoffPolicy::new);
                SwmrNode::new(cfg, 0u64)
            })
            .collect();
        Sim::new(sim_cfg, nodes)
    }

    /// Builds an n-node multi-writer simulation.
    ///
    /// # Panics
    ///
    /// Panics if `variant` is not a MWMR variant.
    pub fn mwmr_sim(
        variant: Variant,
        n: usize,
        sim_cfg: SimConfig,
        retransmit: Option<Nanos>,
    ) -> Sim<MwmrNode<u64>> {
        let nodes = (0..n)
            .map(|i| {
                let mut cfg = match variant {
                    Variant::AtomicMwmr => abd_core::presets::atomic_mwmr(n, ProcessId(i)),
                    Variant::FastMwmr => abd_core::presets::fast_mwmr(n, ProcessId(i)),
                    Variant::RelayMwmr => abd_core::presets::relay_mwmr(n, ProcessId(i)),
                    Variant::RegularMwmr => abd_core::presets::regular_mwmr(n, ProcessId(i)),
                    _ => panic!("{variant:?} is not a MWMR variant"),
                };
                cfg.retransmit = retransmit.map(abd_core::retransmit::BackoffPolicy::new);
                MwmrNode::new(cfg, 0u64)
            })
            .collect();
        Sim::new(sim_cfg, nodes)
    }

    /// Drives `ops` operations (alternating write on `writer` / read on
    /// `reader`), each to completion, and returns per-op message counts
    /// `(write_msgs, read_msgs)` averaged over the run.
    pub fn measure_op_messages<P>(
        sim: &mut Sim<P>,
        ops: usize,
        writer: usize,
        reader: usize,
    ) -> (f64, f64)
    where
        P: abd_core::context::Protocol<Op = RegisterOp<u64>, Resp = RegisterResp<u64>>,
    {
        let mut write_msgs = 0u64;
        let mut writes = 0u64;
        let mut read_msgs = 0u64;
        let mut reads = 0u64;
        for k in 0..ops as u64 {
            let before = sim.metrics().sent;
            if k % 2 == 0 {
                sim.invoke(ProcessId(writer), RegisterOp::Write(k + 1));
                assert!(sim.run_until_quiet(u64::MAX / 2), "write must complete");
                write_msgs += sim.metrics().sent - before;
                writes += 1;
            } else {
                sim.invoke(ProcessId(reader), RegisterOp::Read);
                assert!(sim.run_until_quiet(u64::MAX / 2), "read must complete");
                read_msgs += sim.metrics().sent - before;
                reads += 1;
            }
        }
        (
            write_msgs as f64 / writes.max(1) as f64,
            read_msgs as f64 / reads.max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = Stats::from_samples(vec![1, 2, 3, 4, 100]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 100.0);
        assert!(Stats::from_samples(vec![]).is_none());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("bbbb"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn us_formats_microseconds() {
        assert_eq!(us(1_500.0), "1.50");
    }

    #[test]
    fn message_measurement_matches_theory() {
        use super::clusters::*;
        let mut sim = swmr_sim(Variant::AtomicSwmr, 5, abd_simnet::SimConfig::new(1), None);
        let (w, r) = measure_op_messages(&mut sim, 10, 0, 2);
        assert_eq!(w, 8.0, "write: 2(n-1)");
        assert_eq!(r, 16.0, "read: 4(n-1)");
    }

    #[test]
    fn fast_variant_reads_cost_one_round_uncontended() {
        use super::clusters::*;
        let mut sim = swmr_sim(Variant::FastSwmr, 5, abd_simnet::SimConfig::new(1), None);
        let (w, r) = measure_op_messages(&mut sim, 10, 0, 2);
        assert_eq!(w, 8.0, "write unchanged: 2(n-1)");
        assert_eq!(r, 8.0, "uncontended fast read: 2(n-1)");
        let mut sim = mwmr_sim(Variant::FastMwmr, 5, abd_simnet::SimConfig::new(1), None);
        let (w, r) = measure_op_messages(&mut sim, 10, 0, 2);
        assert_eq!(w, 16.0, "MWMR write keeps both phases: 4(n-1)");
        assert_eq!(r, 8.0, "uncontended fast read: 2(n-1)");
    }
}
