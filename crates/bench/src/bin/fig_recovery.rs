//! **F8 — divergence-proportional recovery: bulk snapshot vs Merkle walk.**
//!
//! A rebooted replica must repair whatever it missed, but the bulk
//! `SyncPull`/`SyncState` path pays for the whole store: every peer ships
//! its full `(key, tag, value)` snapshot no matter how little actually
//! diverged. The Merkle walk (`SyncDigest` → `SyncDiffReq` →
//! `SyncEntries`) descends the per-shard digest tree instead, pruning
//! every subtree whose digest already matches, so the transfer cost is
//! proportional to the *divergence*, not the store.
//!
//! The experiment: an `n = 5` cluster whose replicas each hold 100 000
//! keys. The four survivors hold `k` newer tags the rebooted node lacks
//! (`k ∈ {1, 1 000, 50 000}`); the node restarts and catches up. One run
//! takes the bulk path at `k = 1` (the worst case for bulk: maximal store,
//! minimal divergence); three runs take the walk at increasing staleness.
//!
//! Gates (the binary asserts them, ci.sh pins the JSON):
//!
//! * at `k = 1` the walk moves **≥ 99 %** fewer sync bytes than bulk;
//! * at `k = 1` the walk's message count is logarithmic in the store —
//!   bounded by `(n−1) · 4·log₂(buckets)`, against bulk's
//!   2 messages per peer but `O(store)` bytes;
//! * walk messages, bytes and entries all grow monotonically with `k`:
//!   the protocol spends in proportion to what actually diverged.
//!
//! Everything runs on the virtual clock with seeded RNGs, so
//! `BENCH_recovery.json` is byte-reproducible; `--smoke` runs the
//! identical computation (the full run is already cheap in release) and
//! must leave the JSON unchanged.

use abd_bench::Table;
use abd_core::types::{ProcessId, Tag};
use abd_kv::{KvConfig, KvNode};
use abd_simnet::{Sim, SimConfig};

const N: usize = 5;
const KEYS: u32 = 100_000;
const BUCKETS: usize = 1024;
const SIM_SEED: u64 = 9;

/// Sync-meter deltas for one crash/restart recovery.
struct Recovery {
    msgs: u64,
    bytes: u64,
    entries: u64,
}

/// Preload an `N`-node cluster with `KEYS` keys, make the last node `stale`
/// keys behind its peers, reboot it, and read the sync meters once the
/// cluster quiesces. `threshold` selects the path: `usize::MAX` forces
/// bulk, `0` forces the Merkle walk.
fn recover(threshold: usize, stale: u32) -> Recovery {
    let mut nodes: Vec<KvNode<u32, u64>> = (0..N)
        .map(|i| {
            KvNode::new(
                KvConfig::new(N, ProcessId(i))
                    .with_sync_threshold(threshold)
                    .with_sync_buckets(BUCKETS),
            )
        })
        .collect();
    for node in &mut nodes {
        for k in 0..KEYS {
            node.preload(k, Tag::new(1, ProcessId(0)), u64::from(k));
        }
    }
    // The survivors adopt `stale` newer writes the rebooted node misses.
    for node in nodes.iter_mut().take(N - 1) {
        for k in 0..stale {
            node.preload(k, Tag::new(2, ProcessId(1)), 1_000_000 + u64::from(k));
        }
    }
    let mut sim = Sim::new(SimConfig::new(SIM_SEED), nodes);
    sim.crash_at(1_000, ProcessId(N - 1));
    sim.restart_at(2_000, ProcessId(N - 1));
    assert!(
        sim.run_until_quiet(600_000_000_000),
        "recovery quiesces (threshold {threshold}, stale {stale})"
    );
    assert!(
        !sim.node(N - 1).is_recovering(),
        "rebooted node finished catch-up"
    );
    for k in 0..stale {
        assert_eq!(
            sim.node(N - 1).local_entry(&k).map(|(_, v)| *v),
            Some(1_000_000 + u64::from(k)),
            "stale key {k} repaired (threshold {threshold})"
        );
    }
    let m = sim.read_path_metrics();
    Recovery {
        msgs: m.recovery_msgs,
        bytes: m.recovery_bytes,
        entries: m.sync_entries_sent,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    let bulk = recover(usize::MAX, 1);
    let stalenesses = [1u32, 1_000, 50_000];
    let walks: Vec<Recovery> = stalenesses.iter().map(|&k| recover(0, k)).collect();

    let mut table = Table::new(
        "F8 — recovery cost vs divergence (n = 5, 100k-key store, 1024 buckets)",
        &["mode", "stale keys", "sync msgs", "sync bytes", "entries"],
    );
    table.row(vec![
        "bulk".into(),
        "1".into(),
        bulk.msgs.to_string(),
        bulk.bytes.to_string(),
        bulk.entries.to_string(),
    ]);
    for (k, w) in stalenesses.iter().zip(&walks) {
        table.row(vec![
            "merkle".into(),
            k.to_string(),
            w.msgs.to_string(),
            w.bytes.to_string(),
            w.entries.to_string(),
        ]);
    }
    table.print();

    // Gate 1: at one stale key the walk must move ≥ 99 % fewer bytes.
    let reduction = 100.0 * (1.0 - walks[0].bytes as f64 / bulk.bytes as f64);
    assert!(
        reduction >= 99.0,
        "walk must cut sync bytes by ≥ 99 % at 1 stale key; got {reduction:.2} %"
    );
    // Gate 2: one stale key costs O(log store) messages — each peer's walk
    // descends one root-to-leaf path, two messages per level plus the
    // digest handshake.
    let log2_buckets = BUCKETS.trailing_zeros() as u64;
    let msg_bound = (N as u64 - 1) * 4 * log2_buckets;
    assert!(
        walks[0].msgs <= msg_bound,
        "1-stale walk must stay within {msg_bound} messages; got {}",
        walks[0].msgs
    );
    // Gate 3: the walk's spend grows with divergence, on every meter.
    for pair in walks.windows(2) {
        assert!(
            pair[0].msgs < pair[1].msgs
                && pair[0].bytes < pair[1].bytes
                && pair[0].entries < pair[1].entries,
            "walk cost must grow monotonically with staleness"
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"experiment\": \"F8_recovery\",\n");
    json.push_str(&format!(
        "  \"n\": {N}, \"keys\": {KEYS}, \"buckets\": {BUCKETS}, \"sim_seed\": {SIM_SEED},\n"
    ));
    json.push_str("  \"rows\": [\n");
    let row = |mode: &str, stale: u32, r: &Recovery| {
        format!(
            "    {{\"mode\": \"{mode}\", \"stale\": {stale}, \"sync_msgs\": {}, \
             \"sync_bytes\": {}, \"entries\": {}}}",
            r.msgs, r.bytes, r.entries
        )
    };
    json.push_str(&row("bulk", 1, &bulk));
    for (k, w) in stalenesses.iter().zip(&walks) {
        json.push_str(",\n");
        json.push_str(&row("merkle", *k, w));
    }
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"byte_reduction_pct_at_1_stale\": {reduction:.2},\n"
    ));
    json.push_str(&format!(
        "  \"msg_bound_at_1_stale\": {msg_bound}, \"monotone_in_staleness\": true\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, &json).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
    println!("byte reduction at 1 stale key: {reduction:.2} % (gate: >= 99 %)");
    if smoke {
        println!("--smoke: full computation ran (it is the smoke test)");
    }
}
