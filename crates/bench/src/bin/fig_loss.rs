//! **F3 — liveness over fair-lossy links.**
//!
//! The paper's channels may lose messages as long as repeated sends
//! eventually get through; the emulation stays live because each phase
//! retransmits to non-responders until a quorum answers. The figure sweeps
//! the per-message loss probability and reports completion, latency, and
//! the retransmission overhead (messages per operation vs the loss-free
//! `3(n−1)` average for a 50/50 read/write mix).

use abd_bench::{us, Stats, Table};
use abd_core::msg::RegisterOp;
use abd_core::swmr::{SwmrConfig, SwmrNode};
use abd_core::types::ProcessId;
use abd_simnet::{LatencyModel, Sim, SimConfig};

fn main() {
    let n = 5;
    let ops = 200u64;
    let retransmit_every = 30_000; // 30µs, ~2x the max delay
    let mut t = Table::new(
        "F3 — message-loss sweep (n = 5, retransmit every 30µs); 200 ops each",
        &[
            "loss p",
            "completed",
            "msgs/op",
            "overhead vs p=0",
            "mean latency µs",
            "p99 µs",
        ],
    );
    let mut base_msgs_per_op = None;
    for loss in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5_f64] {
        let nodes: Vec<SwmrNode<u64>> = (0..n)
            .map(|i| {
                SwmrNode::new(
                    SwmrConfig::new(n, ProcessId(i), ProcessId(0))
                        .with_retransmit(retransmit_every),
                    0,
                )
            })
            .collect();
        let cfg = SimConfig::new(99)
            .with_latency(LatencyModel::Uniform {
                lo: 2_000,
                hi: 15_000,
            })
            .with_loss(loss.min(0.999));
        let mut sim = Sim::new(cfg, nodes);
        let mut lats = Vec::new();
        for k in 0..ops {
            let before = sim.completed().len();
            if k % 2 == 0 {
                sim.invoke(ProcessId(0), RegisterOp::Write(k + 1));
            } else {
                sim.invoke(ProcessId((k as usize % (n - 1)) + 1), RegisterOp::Read);
            }
            assert!(
                sim.run_until_ops_complete(sim.now() + 60_000_000_000),
                "loss {loss}: op {k} failed to complete despite retransmission"
            );
            lats.push(sim.completed()[before].latency());
        }
        let msgs_per_op = sim.metrics().sent as f64 / ops as f64;
        let base = *base_msgs_per_op.get_or_insert(msgs_per_op);
        let s = Stats::from_samples(lats).unwrap();
        t.row(vec![
            format!("{loss:.2}"),
            format!("{}/{}", sim.metrics().ops_completed, ops),
            format!("{msgs_per_op:.1}"),
            format!("{:.2}x", msgs_per_op / base),
            us(s.mean),
            us(s.p99),
        ]);
    }
    t.print();
    println!(
        "\nShape checks: completion stays {}/{} at every loss rate (fair-lossy liveness),\nwhile messages/op and tail latency grow with the loss rate — the price of\nretransmission, not a correctness cliff.",
        ops, ops
    );
}
