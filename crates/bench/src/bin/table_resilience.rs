//! **T3 / T4 — resilience boundary** (the paper's main theorem and its
//! matching impossibility).
//!
//! * T3: every operation completes iff the number of crashed processors
//!   `f` satisfies `f ≤ ⌈n/2⌉ − 1`; at `f ≥ ⌈n/2⌉` operations block
//!   forever. The boundary is exact — the sweep shows OK up to the
//!   paper's bound and STALL immediately above it.
//! * T4: the impossibility is a *partition* argument: split the cluster
//!   into two halves with no majority and operations stall even though
//!   every processor is alive; heal the partition and the stalled
//!   operations complete.

use abd_bench::clusters::{mwmr_sim, swmr_sim, Variant};
use abd_bench::Table;
use abd_core::msg::RegisterOp;
use abd_core::types::ProcessId;
use abd_simnet::SimConfig;

fn main() {
    let mut t3 = Table::new(
        "T3 — crash-failure sweep (paper: live iff f <= ceil(n/2)-1)",
        &[
            "n",
            "f",
            "paper predicts",
            "SWMR write",
            "SWMR read",
            "MWMR write",
        ],
    );
    for n in [3usize, 4, 5, 7, 9] {
        let f_max = n.div_ceil(2) - 1;
        for f in 0..n {
            let live = f <= f_max;
            // Crash the last f nodes; run a write on p0 and a read on p1.
            let mut sw = swmr_sim(Variant::AtomicSwmr, n, SimConfig::new(1), None);
            for i in n - f..n {
                sw.crash_at(0, ProcessId(i));
            }
            sw.invoke_at(10, ProcessId(0), RegisterOp::Write(1));
            let w_ok = sw.run_until_ops_complete(10_000_000_000);
            sw.invoke(ProcessId(1 % (n - f)), RegisterOp::Read);
            let r_ok = sw.run_until_ops_complete(20_000_000_000);

            let mut mw = mwmr_sim(Variant::AtomicMwmr, n, SimConfig::new(1), None);
            for i in n - f..n {
                mw.crash_at(0, ProcessId(i));
            }
            mw.invoke_at(10, ProcessId(0), RegisterOp::Write(1));
            let mw_ok = mw.run_until_ops_complete(10_000_000_000);

            let verdict = |ok: bool| if ok { "OK" } else { "STALL" }.to_string();
            assert_eq!(
                w_ok, live,
                "n={n} f={f}: SWMR write disagrees with the paper"
            );
            assert_eq!(
                r_ok, live,
                "n={n} f={f}: SWMR read disagrees with the paper"
            );
            assert_eq!(
                mw_ok, live,
                "n={n} f={f}: MWMR write disagrees with the paper"
            );
            t3.row(vec![
                n.to_string(),
                f.to_string(),
                if live { "live" } else { "blocked" }.to_string(),
                verdict(w_ok),
                verdict(r_ok),
                verdict(mw_ok),
            ]);
        }
    }
    t3.print();

    let mut t4 = Table::new(
        "T4 — partition argument (n even, split in halves; all processors alive)",
        &["n", "split", "during partition", "after heal"],
    );
    for n in [4usize, 6, 8] {
        // Writer p0 with retransmission so the stalled op survives healing.
        let nodes: Vec<_> = (0..n)
            .map(|i| {
                let cfg = abd_core::presets::atomic_swmr(n, ProcessId(i), ProcessId(0))
                    .with_retransmit(50_000);
                abd_core::swmr::SwmrNode::new(cfg, 0u64)
            })
            .collect();
        let mut sim = abd_simnet::Sim::new(SimConfig::new(3), nodes);
        let groups: Vec<u32> = (0..n).map(|i| if i < n / 2 { 0 } else { 1 }).collect();
        sim.partition_at(0, groups);
        sim.invoke_at(10, ProcessId(0), RegisterOp::Write(7));
        let during = sim.run_until_ops_complete(1_000_000_000);
        assert!(
            !during,
            "n={n}: a half-half split must stall (2f = n impossibility)"
        );
        sim.heal_at(sim.now().max(1_000_000_000) + 1);
        let after = sim.run_until_ops_complete(60_000_000_000);
        assert!(after, "n={n}: healing must release the operation");
        t4.row(vec![
            n.to_string(),
            format!("{}/{}", n / 2, n - n / 2),
            if during { "completed (BUG)" } else { "stalled" }.to_string(),
            if after {
                "completed"
            } else {
                "still stalled (BUG)"
            }
            .to_string(),
        ]);
    }
    t4.print();

    println!(
        "\nAll rows asserted against the paper's predictions — a disagreement aborts the binary."
    );
}
