//! **T1 / T2 — message and round complexity** (JACM Theorems on the
//! communication cost of the emulation).
//!
//! Paper claims, with majority quorums on reliable links:
//!
//! * SWMR write: 1 round trip, `2(n−1)` messages;
//! * SWMR read: 2 round trips, `4(n−1)` messages;
//! * MWMR write and read: 2 round trips, `4(n−1)` messages each.
//!
//! Rounds are measured by running under a constant per-message delay `d`
//! and dividing the observed operation latency by `2d` (one round trip =
//! out + back).

use abd_bench::clusters::{measure_op_messages, mwmr_sim, swmr_sim, Variant};
use abd_bench::Table;
use abd_core::msg::RegisterOp;
use abd_core::types::ProcessId;
use abd_simnet::{LatencyModel, SimConfig};

const DELAY: u64 = 1_000; // constant 1µs per message

fn rounds_of<P>(sim: &mut abd_simnet::Sim<P>, op: RegisterOp<u64>, node: usize) -> f64
where
    P: abd_core::context::Protocol<Op = RegisterOp<u64>, Resp = abd_core::msg::RegisterResp<u64>>,
{
    let before = sim.completed().len();
    sim.invoke(ProcessId(node), op);
    assert!(sim.run_until_quiet(u64::MAX / 2));
    let rec = &sim.completed()[before];
    rec.latency() as f64 / (2.0 * DELAY as f64)
}

fn main() {
    let cfg = || SimConfig::new(7).with_latency(LatencyModel::Constant(DELAY));

    let mut t1 = Table::new(
        "T1 — SWMR emulation cost (paper: write 2(n-1) msgs / 1 round, read 4(n-1) msgs / 2 rounds)",
        &["n", "write msgs", "expect", "read msgs", "expect", "write rounds", "read rounds"],
    );
    for n in [3usize, 5, 7, 9, 15, 21, 31] {
        let mut sim = swmr_sim(Variant::AtomicSwmr, n, cfg(), None);
        let (w, r) = measure_op_messages(&mut sim, 40, 0, 1 % n);
        let mut sim2 = swmr_sim(Variant::AtomicSwmr, n, cfg(), None);
        let wr = rounds_of(&mut sim2, RegisterOp::Write(1), 0);
        let rr = rounds_of(&mut sim2, RegisterOp::Read, 1);
        assert_eq!(w, (2 * (n - 1)) as f64, "SWMR write: 2(n-1) msgs");
        assert_eq!(r, (4 * (n - 1)) as f64, "SWMR read: 4(n-1) msgs");
        assert_eq!(wr, 1.0, "SWMR write: 1 round");
        assert_eq!(rr, 2.0, "SWMR read: 2 rounds");
        t1.row(vec![
            n.to_string(),
            format!("{w:.0}"),
            format!("{}", 2 * (n - 1)),
            format!("{r:.0}"),
            format!("{}", 4 * (n - 1)),
            format!("{wr:.1}"),
            format!("{rr:.1}"),
        ]);
    }
    t1.print();

    let mut t2 = Table::new(
        "T2 — MWMR emulation cost (paper: write and read both 4(n-1) msgs / 2 rounds)",
        &[
            "n",
            "write msgs",
            "expect",
            "read msgs",
            "expect",
            "write rounds",
            "read rounds",
        ],
    );
    for n in [3usize, 5, 7, 9, 15, 21, 31] {
        let mut sim = mwmr_sim(Variant::AtomicMwmr, n, cfg(), None);
        let (w, r) = measure_op_messages(&mut sim, 40, 2 % n, 1 % n);
        let mut sim2 = mwmr_sim(Variant::AtomicMwmr, n, cfg(), None);
        let wr = rounds_of(&mut sim2, RegisterOp::Write(1), 2 % n);
        let rr = rounds_of(&mut sim2, RegisterOp::Read, 1 % n);
        assert_eq!(w, (4 * (n - 1)) as f64, "MWMR write: 4(n-1) msgs");
        assert_eq!(r, (4 * (n - 1)) as f64, "MWMR read: 4(n-1) msgs");
        assert_eq!(wr, 2.0, "MWMR write: 2 rounds");
        assert_eq!(rr, 2.0, "MWMR read: 2 rounds");
        t2.row(vec![
            n.to_string(),
            format!("{w:.0}"),
            format!("{}", 4 * (n - 1)),
            format!("{r:.0}"),
            format!("{}", 4 * (n - 1)),
            format!("{wr:.1}"),
            format!("{rr:.1}"),
        ]);
    }
    t2.print();

    let mut t2b = Table::new(
        "T2b — fast-path read cost (write-back elided on unanimous quorums: read 2(n-1) msgs / 1 round uncontended)",
        &["n", "variant", "read msgs", "expect", "read rounds", "write msgs"],
    );
    for n in [3usize, 5, 7, 9, 15, 21, 31] {
        let mut sim = swmr_sim(Variant::FastSwmr, n, cfg(), None);
        let (w, r) = measure_op_messages(&mut sim, 40, 0, 1 % n);
        let mut sim2 = swmr_sim(Variant::FastSwmr, n, cfg(), None);
        let _ = rounds_of(&mut sim2, RegisterOp::Write(1), 0);
        let rr = rounds_of(&mut sim2, RegisterOp::Read, 1);
        assert_eq!(w, (2 * (n - 1)) as f64, "fast flag leaves writes alone");
        assert_eq!(
            r,
            (2 * (n - 1)) as f64,
            "uncontended fast read: 2(n-1) msgs"
        );
        assert_eq!(rr, 1.0, "uncontended fast read: 1 round");
        t2b.row(vec![
            n.to_string(),
            "SWMR".into(),
            format!("{r:.0}"),
            format!("{}", 2 * (n - 1)),
            format!("{rr:.1}"),
            format!("{w:.0}"),
        ]);

        let mut sim = mwmr_sim(Variant::FastMwmr, n, cfg(), None);
        let (w, r) = measure_op_messages(&mut sim, 40, 2 % n, 1 % n);
        let mut sim2 = mwmr_sim(Variant::FastMwmr, n, cfg(), None);
        let _ = rounds_of(&mut sim2, RegisterOp::Write(1), 2 % n);
        let rr = rounds_of(&mut sim2, RegisterOp::Read, 1 % n);
        assert_eq!(w, (4 * (n - 1)) as f64, "MWMR write keeps both phases");
        assert_eq!(
            r,
            (2 * (n - 1)) as f64,
            "uncontended fast read: 2(n-1) msgs"
        );
        assert_eq!(rr, 1.0, "uncontended fast read: 1 round");
        t2b.row(vec![
            n.to_string(),
            "MWMR".into(),
            format!("{r:.0}"),
            format!("{}", 2 * (n - 1)),
            format!("{rr:.1}"),
            format!("{w:.0}"),
        ]);
    }
    t2b.print();

    println!(
        "\nNote: the regular baseline's read costs only 2(n-1) messages / 1 round —\nwhat the write-back buys is measured in T5 (atomicity) at this price.\nThe fast path (T2b) hits the same 1-round cost without giving up atomicity,\nbut only on quorums that unanimously report the maximum tag."
    );
}
