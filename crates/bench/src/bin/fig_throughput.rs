//! **F6 — fast-path reads + batched quorum messaging: throughput and
//! per-operation cost.**
//!
//! A closed-loop multi-client, multi-key workload against the replicated
//! key-value store, in six configurations on the deterministic simulator:
//!
//! * `baseline` — every `Get` runs both phases (query + write-back);
//! * `fast` — `Get`s elide the write-back when the query quorum
//!   unanimously reports the maximum tag (and forms a write quorum);
//! * `fast+batched` — fast reads plus [`Batched`] transport wrapping:
//!   same-window messages to the same peer coalesce into one envelope;
//! * `fast+adaptive-batch` — fast reads plus the load-adaptive window
//!   ([`Batched::adaptive`]): same-tick flushing while idle, windows
//!   growing under pipelined fan-out;
//! * `relay` — `Get`s run the one-and-a-half-round relay read (servers
//!   forward tags to each other and reply to the reader directly);
//! * `relay+batched` — relay reads plus windowed [`Batched`] transport,
//!   which is what absorbs the relay's O(n²) server-to-server fan-out.
//!
//! A **consistency-tier section** (T-series) reruns the same closed loop
//! with reads demoted below atomic: `regular` serves every `Get` at
//! [`Consistency::Regular`] (query round, no write-back), and
//! `sc-mixed` issues 99% of reads at [`Consistency::Sequential`]
//! (served locally, zero rounds) with every 100th read kept atomic —
//! the SC-ABD deployment shape. Both rows are gated on msgs/op and
//! rounds/op reductions against the all-atomic baseline.
//!
//! Before the workload, the binary asserts the micro-costs the fast path
//! claims: an uncontended fast read is **1 round / `2(n−1)` messages** on
//! SWMR, MWMR, and the store (baseline atomic reads: 2 rounds /
//! `4(n−1)`).
//!
//! A **contended-writer section** then measures the read modes where they
//! differ: reads staged to overlap an in-flight write. `FastUnanimous`
//! loses its unanimity precondition there and degrades to the full
//! two-round read, while `Relay` completes in 1.5 rounds regardless —
//! the table and JSON carry rounds-per-read for both, gated at
//! `relay <= 1.6` and `fast >= 1.9`.
//!
//! Everything written to `BENCH_throughput.json` comes from the virtual
//! clock and message counters, so the file is byte-reproducible.
//! `--smoke` skips only the wall-clock thread-runtime section (stdout
//! only), leaving the JSON unchanged.

use abd_bench::clusters::{mwmr_sim, swmr_sim, Variant};
use abd_bench::Table;
use abd_core::batch::Batched;
use abd_core::context::{Protocol, ReadPathStats};
use abd_core::msg::RegisterOp;
use abd_core::types::{Consistency, Nanos, ProcessId, ReadMode};
use abd_kv::{KvConfig, KvNode, KvOp, KvResp};
use abd_runtime::cluster::{Cluster, Jitter};
use abd_simnet::{LatencyModel, Metrics, Sim, SimConfig};

const N: usize = 5;
const DELAY: Nanos = 1_000; // constant 1µs per message
const CLIENTS_PER_NODE: usize = 4;
const OPS_PER_CLIENT: usize = 25;
const KEYS: u64 = 8;
const WRITE_PCT: u64 = 20;
const BATCH_WINDOW: Nanos = 500;
/// In the `sc-mixed` tier row, every `ATOMIC_EVERY`-th read is atomic;
/// the rest run at the sequential tier (99% SC / 1% atomic).
const ATOMIC_EVERY: u64 = 100;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn gen_op(rng: &mut u64) -> KvOp<u64, u64> {
    let key = xorshift(rng) % KEYS;
    if xorshift(rng) % 100 < WRITE_PCT {
        KvOp::Put(key, xorshift(rng) % 1_000)
    } else {
        KvOp::Get(key)
    }
}

/// Same op mix as [`gen_op`], but reads are demoted: every read runs at
/// `tier` except each `ATOMIC_EVERY`-th one, which stays atomic.
/// `atomic_every = 0` demotes every read unconditionally.
fn gen_op_tiered(
    rng: &mut u64,
    reads: &mut u64,
    tier: Consistency,
    atomic_every: u64,
) -> KvOp<u64, u64> {
    match gen_op(rng) {
        KvOp::Get(key) => {
            *reads += 1;
            let cons = if atomic_every > 0 && reads.is_multiple_of(atomic_every) {
                Consistency::Atomic
            } else {
                tier
            };
            KvOp::GetAt(key, cons)
        }
        put => put,
    }
}

fn sim_cfg(seed: u64) -> SimConfig {
    SimConfig::new(seed).with_latency(LatencyModel::Constant(DELAY))
}

fn kv_nodes(mode: ReadMode) -> Vec<KvNode<u64, u64>> {
    (0..N)
        .map(|i| KvNode::new(KvConfig::new(N, ProcessId(i)).with_read_mode(mode)))
        .collect()
}

struct RunResult {
    metrics: Metrics,
    makespan: Nanos,
}

impl RunResult {
    fn msgs_per_op(&self) -> f64 {
        self.metrics.msgs_per_op().expect("ops completed")
    }

    fn rounds_per_op(&self) -> f64 {
        self.metrics.mean_op_latency().expect("ops completed") / (2.0 * DELAY as f64)
    }

    fn kops_per_virtual_sec(&self) -> f64 {
        self.metrics.ops_completed as f64 / (self.makespan as f64 / 1e9) / 1e3
    }
}

/// Drives `CLIENTS_PER_NODE` closed-loop clients per node, each issuing
/// `OPS_PER_CLIENT` operations over `KEYS` keys: a completion immediately
/// triggers the next invocation on the same node, so operations overlap
/// and same-window sends can coalesce.
fn run_closed_loop<P>(sim: &mut Sim<P>) -> RunResult
where
    P: Protocol<Op = KvOp<u64, u64>, Resp = KvResp<u64>> + ReadPathStats,
{
    run_closed_loop_with(sim, gen_op)
}

/// [`run_closed_loop`] with a caller-supplied op generator, so the tier
/// rows can demote reads without duplicating the driver.
fn run_closed_loop_with<P, F>(sim: &mut Sim<P>, mut gen: F) -> RunResult
where
    P: Protocol<Op = KvOp<u64, u64>, Resp = KvResp<u64>> + ReadPathStats,
    F: FnMut(&mut u64) -> KvOp<u64, u64>,
{
    let per_node = CLIENTS_PER_NODE * OPS_PER_CLIENT;
    let mut issued = [0usize; N];
    let mut rng = 0x5eed_f00d_u64;
    for (i, count) in issued.iter_mut().enumerate() {
        for _ in 0..CLIENTS_PER_NODE {
            sim.invoke(ProcessId(i), gen(&mut rng));
            *count += 1;
        }
    }
    loop {
        assert!(sim.run_until_ops_complete(u64::MAX / 2), "workload stalled");
        let done = sim.drain_new_completions();
        if done.is_empty() {
            break;
        }
        for rec in done {
            let i = rec.client.index();
            if issued[i] < per_node {
                sim.invoke(ProcessId(i), gen(&mut rng));
                issued[i] += 1;
            }
        }
    }
    let metrics = sim.read_path_metrics();
    assert_eq!(
        metrics.ops_completed,
        (N * per_node) as u64,
        "every client op completed"
    );
    RunResult {
        metrics,
        makespan: sim.now(),
    }
}

/// The micro-costs the fast path claims, as exact assertions: after a
/// completed write has settled, a fast read is one round trip of
/// `2(n−1)` messages on every protocol that supports the flag.
fn assert_uncontended_fast_reads() {
    let peers = 2 * (N as u64 - 1);

    let mut sim = swmr_sim(Variant::FastSwmr, N, sim_cfg(2), None);
    sim.invoke(ProcessId(0), RegisterOp::Write(1));
    assert!(sim.run_until_quiet(u64::MAX / 2));
    let before = sim.metrics().sent;
    sim.invoke(ProcessId(3), RegisterOp::Read);
    assert!(sim.run_until_quiet(u64::MAX / 2));
    assert_eq!(sim.metrics().sent - before, peers, "SWMR fast read msgs");
    assert_eq!(sim.completed()[1].latency(), 2 * DELAY, "SWMR: 1 round");

    let mut sim = mwmr_sim(Variant::FastMwmr, N, sim_cfg(3), None);
    sim.invoke(ProcessId(1), RegisterOp::Write(1));
    assert!(sim.run_until_quiet(u64::MAX / 2));
    let before = sim.metrics().sent;
    sim.invoke(ProcessId(2), RegisterOp::Read);
    assert!(sim.run_until_quiet(u64::MAX / 2));
    assert_eq!(sim.metrics().sent - before, peers, "MWMR fast read msgs");
    assert_eq!(sim.completed()[1].latency(), 2 * DELAY, "MWMR: 1 round");

    let mut sim = Sim::new(sim_cfg(4), kv_nodes(ReadMode::FastUnanimous));
    sim.invoke(ProcessId(0), KvOp::Put(1, 9));
    assert!(sim.run_until_quiet(u64::MAX / 2));
    let before = sim.metrics().sent;
    sim.invoke(ProcessId(3), KvOp::Get(1));
    assert!(sim.run_until_quiet(u64::MAX / 2));
    assert_eq!(sim.metrics().sent - before, peers, "KV fast get msgs");
    assert_eq!(sim.completed()[1].latency(), 2 * DELAY, "KV get: 1 round");
    assert_eq!(sim.read_path_metrics().fast_reads, 1);
}

fn variant_json(name: &str, r: &RunResult) -> String {
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"sent\": {}, ",
            "\"msgs_per_op\": {:.3}, \"rounds_per_op\": {:.3}, ",
            "\"fast_reads\": {}, \"write_backs\": {}, \"relay_reads\": {}, ",
            "\"sc_reads\": {}, \"regular_reads\": {}, ",
            "\"makespan_ns\": {}, \"kops_per_virtual_sec\": {:.2}}}"
        ),
        name,
        r.metrics.ops_completed,
        r.metrics.sent,
        r.msgs_per_op(),
        r.rounds_per_op(),
        r.metrics.fast_reads,
        r.metrics.write_backs,
        r.metrics.relay_reads,
        r.metrics.sc_reads,
        r.metrics.regular_reads,
        r.makespan,
        r.kops_per_virtual_sec(),
    )
}

/// Mean rounds per read when every read overlaps an in-flight write.
///
/// The staging is exact and deterministic: a settled write `W1`, then the
/// writer invokes `W2` at `t = 2·DELAY` (adopting the new tag locally the
/// moment it is invoked, a full `DELAY` before any server hears of it).
/// Each measured read is invoked so its queries arrive strictly inside
/// that disagreement window — the writer answers with `W2`'s tag, every
/// other server with `W1`'s. `FastUnanimous` thereby loses its unanimity
/// precondition and pays the write-back round; `Relay` never needed it.
fn contended_read_rounds(variant: Variant) -> f64 {
    let offsets = [1_200, 1_400, 1_600, 1_800];
    let mut total: Nanos = 0;
    for (i, off) in offsets.into_iter().enumerate() {
        let mut sim = swmr_sim(variant, N, sim_cfg(10 + i as u64), None);
        sim.invoke(ProcessId(0), RegisterOp::Write(1));
        sim.invoke_at(2 * DELAY, ProcessId(0), RegisterOp::Write(2));
        let read = sim.invoke_at(off, ProcessId(3), RegisterOp::Read);
        assert!(sim.run_until_quiet(u64::MAX / 2));
        let rec = sim
            .completed()
            .iter()
            .find(|r| r.op == read)
            .expect("contended read completed");
        total += rec.latency();
    }
    total as f64 / offsets.len() as f64 / (2.0 * DELAY as f64)
}

/// Wall-clock sanity run on the thread runtime (stdout only — never part
/// of the JSON, so `--smoke` can skip it without changing the artifact).
fn wall_clock_section() {
    use std::time::Instant;
    let ops_per_client = 200usize;
    for (name, fast) in [("baseline", false), ("fast", true)] {
        let cluster: Cluster<KvNode<u64, u64>> = Cluster::spawn(
            (0..3)
                .map(|i| {
                    let mode = if fast {
                        ReadMode::FastUnanimous
                    } else {
                        ReadMode::TwoRound
                    };
                    KvNode::new(KvConfig::new(3, ProcessId(i)).with_read_mode(mode))
                })
                .collect(),
            Jitter::None,
        );
        let start = Instant::now();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let client = cluster.client(i);
                std::thread::spawn(move || {
                    let mut rng = (i as u64 + 1) * 77;
                    for _ in 0..ops_per_client {
                        match gen_op(&mut rng) {
                            op @ (KvOp::Get(_) | KvOp::GetAt(..)) => {
                                assert!(matches!(client.invoke(op), KvResp::GetOk(_)));
                            }
                            op @ KvOp::Put(..) => {
                                assert_eq!(client.invoke(op), KvResp::PutOk);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "  thread runtime (n=3, 3 clients x {ops_per_client} ops), {name}: \
             {:.0} ops/s wall-clock",
            (3 * ops_per_client) as f64 / secs
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    assert_uncontended_fast_reads();
    println!(
        "micro-checks passed: uncontended fast read = 1 round / 2(n-1) msgs \
         on SWMR, MWMR, KV (n={N})"
    );

    let fast_contended = contended_read_rounds(Variant::FastSwmr);
    let relay_contended = contended_read_rounds(Variant::RelaySwmr);
    println!(
        "contended-writer reads (SWMR, n={N}): FastUnanimous {fast_contended:.2} \
         rounds/read, Relay {relay_contended:.2} rounds/read \
         (gates: fast >= 1.9, relay <= 1.6)"
    );
    assert!(
        fast_contended >= 1.9,
        "FastUnanimous must degrade to ~2 rounds under a contended writer"
    );
    assert!(
        relay_contended <= 1.6,
        "Relay must hold ~1.5 rounds under a contended writer"
    );

    let mut base_sim = Sim::new(sim_cfg(1), kv_nodes(ReadMode::TwoRound));
    let base = run_closed_loop(&mut base_sim);
    let mut fast_sim = Sim::new(sim_cfg(1), kv_nodes(ReadMode::FastUnanimous));
    let fast = run_closed_loop(&mut fast_sim);
    let mut batched_sim = Sim::new(
        sim_cfg(1),
        kv_nodes(ReadMode::FastUnanimous)
            .into_iter()
            .map(|node| Batched::new(node, BATCH_WINDOW))
            .collect::<Vec<_>>(),
    );
    let batched = run_closed_loop(&mut batched_sim);
    let mut adaptive_sim = Sim::new(
        sim_cfg(1),
        kv_nodes(ReadMode::FastUnanimous)
            .into_iter()
            .map(|node| Batched::adaptive(node, BATCH_WINDOW))
            .collect::<Vec<_>>(),
    );
    let adaptive = run_closed_loop(&mut adaptive_sim);
    let mut relay_sim = Sim::new(sim_cfg(1), kv_nodes(ReadMode::Relay));
    let relay = run_closed_loop(&mut relay_sim);
    let mut relay_batched_sim = Sim::new(
        sim_cfg(1),
        kv_nodes(ReadMode::Relay)
            .into_iter()
            .map(|node| Batched::new(node, BATCH_WINDOW))
            .collect::<Vec<_>>(),
    );
    let relay_batched = run_closed_loop(&mut relay_batched_sim);

    // T-series: consistency tiers on the plain (unbatched, two-round
    // atomic) cluster, so the only variable is the read tier itself.
    let mut regular_sim = Sim::new(sim_cfg(1), kv_nodes(ReadMode::TwoRound));
    let mut regular_reads_issued = 0u64;
    let regular = run_closed_loop_with(&mut regular_sim, |rng| {
        gen_op_tiered(rng, &mut regular_reads_issued, Consistency::Regular, 0)
    });
    let mut mixed_sim = Sim::new(sim_cfg(1), kv_nodes(ReadMode::TwoRound));
    let mut mixed_reads_issued = 0u64;
    let mixed = run_closed_loop_with(&mut mixed_sim, |rng| {
        gen_op_tiered(
            rng,
            &mut mixed_reads_issued,
            Consistency::Sequential,
            ATOMIC_EVERY,
        )
    });

    let mut table = Table::new(
        &format!(
            "F6 — closed-loop KV workload (n={N}, {CLIENTS_PER_NODE} clients/node x \
             {OPS_PER_CLIENT} ops, {KEYS} keys, {WRITE_PCT}% puts, delay {DELAY}ns)"
        ),
        &[
            "variant",
            "msgs/op",
            "rounds/op",
            "fast reads",
            "relay reads",
            "write-backs",
            "kops/virt-s",
        ],
    );
    for (name, r) in [
        ("baseline", &base),
        ("fast", &fast),
        ("fast+batched", &batched),
        ("fast+adaptive-batch", &adaptive),
        ("relay", &relay),
        ("relay+batched", &relay_batched),
        ("regular", &regular),
        ("sc-mixed(99/1)", &mixed),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.2}", r.msgs_per_op()),
            format!("{:.2}", r.rounds_per_op()),
            r.metrics.fast_reads.to_string(),
            r.metrics.relay_reads.to_string(),
            r.metrics.write_backs.to_string(),
            format!("{:.1}", r.kops_per_virtual_sec()),
        ]);
    }
    table.print();

    assert!(base.metrics.fast_reads == 0, "baseline never elides");
    assert!(fast.metrics.fast_reads > 0, "fast path must fire");
    assert!(relay.metrics.relay_reads > 0, "relay path must fire");
    assert!(
        relay.metrics.write_backs == 0,
        "relay reads never write back"
    );
    let reduction = (1.0 - batched.msgs_per_op() / base.msgs_per_op()) * 100.0;
    println!(
        "\nfast+batched sends {reduction:.1}% fewer messages per operation than \
         baseline (gate: >= 20%)"
    );
    assert!(reduction >= 20.0, "msgs/op reduction gate failed");
    let adaptive_reduction = (1.0 - adaptive.msgs_per_op() / base.msgs_per_op()) * 100.0;
    println!(
        "fast+adaptive-batch sends {adaptive_reduction:.1}% fewer messages per \
         operation than baseline (gate: >= 20%)"
    );
    assert!(
        adaptive_reduction >= 20.0,
        "adaptive msgs/op reduction gate failed"
    );
    let relay_absorbed = (1.0 - relay_batched.msgs_per_op() / relay.msgs_per_op()) * 100.0;
    println!(
        "relay+batched absorbs {relay_absorbed:.1}% of the relay fan-out's \
         messages (gate: >= 20%)"
    );
    assert!(
        relay_absorbed >= 20.0,
        "batching must absorb the relay fan-out"
    );

    // Tier gates: each demotion must pay off against the all-atomic
    // baseline, in messages AND rounds, and the demoted paths must
    // actually have carried the reads.
    assert!(regular.metrics.regular_reads > 0, "regular tier must fire");
    assert!(
        regular.metrics.write_backs == 0,
        "regular reads never write back"
    );
    assert!(mixed.metrics.sc_reads > 0, "SC tier must fire");
    assert!(
        mixed.metrics.write_backs > 0,
        "the 1% atomic reads must still pay their write-backs"
    );
    let regular_reduction = (1.0 - regular.msgs_per_op() / base.msgs_per_op()) * 100.0;
    println!(
        "regular-tier reads send {regular_reduction:.1}% fewer messages per \
         operation than all-atomic baseline (gate: >= 25%)"
    );
    assert!(regular_reduction >= 25.0, "regular msgs/op gate failed");
    let mixed_reduction = (1.0 - mixed.msgs_per_op() / base.msgs_per_op()) * 100.0;
    println!(
        "sc-mixed(99/1) sends {mixed_reduction:.1}% fewer messages per \
         operation than all-atomic baseline (gate: >= 50%)"
    );
    assert!(mixed_reduction >= 50.0, "sc-mixed msgs/op gate failed");
    let mixed_rounds_ratio = mixed.rounds_per_op() / base.rounds_per_op();
    println!(
        "sc-mixed(99/1) rounds/op is {:.2}x baseline (gate: <= 0.5)",
        mixed_rounds_ratio
    );
    assert!(mixed_rounds_ratio <= 0.5, "sc-mixed rounds/op gate failed");

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"F6_throughput\",\n",
            "  \"n\": {}, \"delay_ns\": {}, \"clients_per_node\": {}, ",
            "\"ops_per_client\": {}, \"keys\": {}, \"write_pct\": {}, ",
            "\"batch_window_ns\": {},\n",
            "  \"uncontended_fast_read\": {{\"rounds\": 1, \"messages\": \"2(n-1)\"}},\n",
            "  \"contended_writer\": {{\"fast_unanimous_rounds_per_read\": {:.3}, ",
            "\"relay_rounds_per_read\": {:.3}}},\n",
            "  \"variants\": [\n{},\n{},\n{},\n{},\n{},\n{},\n{},\n{}\n  ],\n",
            "  \"msgs_per_op_reduction_pct\": {:.1},\n",
            "  \"adaptive_msgs_per_op_reduction_pct\": {:.1},\n",
            "  \"relay_batched_absorption_pct\": {:.1},\n",
            "  \"tiers\": {{\"atomic_every\": {}, ",
            "\"regular_msgs_per_op_reduction_pct\": {:.1}, ",
            "\"mixed_msgs_per_op_reduction_pct\": {:.1}, ",
            "\"mixed_rounds_per_op_ratio\": {:.3}}}\n",
            "}}\n"
        ),
        N,
        DELAY,
        CLIENTS_PER_NODE,
        OPS_PER_CLIENT,
        KEYS,
        WRITE_PCT,
        BATCH_WINDOW,
        fast_contended,
        relay_contended,
        variant_json("baseline", &base),
        variant_json("fast", &fast),
        variant_json("fast+batched", &batched),
        variant_json("fast+adaptive-batch", &adaptive),
        variant_json("relay", &relay),
        variant_json("relay+batched", &relay_batched),
        variant_json("regular", &regular),
        variant_json("sc-mixed(99/1)", &mixed),
        reduction,
        adaptive_reduction,
        relay_absorbed,
        ATOMIC_EVERY,
        regular_reduction,
        mixed_reduction,
        mixed_rounds_ratio,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    if smoke {
        println!("--smoke: skipping wall-clock thread-runtime section");
    } else {
        wall_clock_section();
    }
}
