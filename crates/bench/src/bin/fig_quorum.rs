//! **F4 — quorum-system generalization** (the abstraction step the
//! follow-up literature made explicit; the paper's majority is one point
//! in the space).
//!
//! For several quorum families the figure reports, on the multi-writer
//! protocol: messages per operation, mean latency, and the crash
//! resilience actually observed (largest `f` with all operations
//! completing, crashing nodes from the top).
//!
//! * majority — the paper's choice: best resilience;
//! * `r/w` thresholds — Dynamo-style read/write asymmetry;
//! * grid — `O(√n)` quorum *cardinality*; every node is still contacted by
//!   the broadcast, but only the grid quorum must answer, so latency
//!   follows the quorum's order statistic, and resilience drops (a full
//!   column must survive).

use abd_bench::{us, Stats, Table};
use abd_core::msg::RegisterOp;
use abd_core::mwmr::{MwmrConfig, MwmrNode};
use abd_core::quorum::{Grid, Majority, QuorumSystem, Threshold};
use abd_core::types::ProcessId;
use abd_simnet::{LatencyModel, Sim, SimConfig};
use std::sync::Arc;

fn build(n: usize, q: Arc<dyn QuorumSystem>, seed: u64) -> Sim<MwmrNode<u64>> {
    let nodes = (0..n)
        .map(|i| {
            MwmrNode::new(
                MwmrConfig::new(n, ProcessId(i)).with_quorum(Arc::clone(&q)),
                0u64,
            )
        })
        .collect();
    Sim::new(
        SimConfig::new(seed).with_latency(LatencyModel::Uniform {
            lo: 2_000,
            hi: 20_000,
        }),
        nodes,
    )
}

/// Mean latency + msgs/op over a 50/50 workload.
fn measure(n: usize, q: Arc<dyn QuorumSystem>) -> (f64, Stats) {
    let mut sim = build(n, q, 21);
    let ops = 200u64;
    let mut lats = Vec::new();
    for k in 0..ops {
        let before = sim.completed().len();
        let node = ProcessId(k as usize % n);
        if k % 2 == 0 {
            sim.invoke(node, RegisterOp::Write(k + 1));
        } else {
            sim.invoke(node, RegisterOp::Read);
        }
        assert!(sim.run_until_quiet(u64::MAX / 2));
        lats.push(sim.completed()[before].latency());
    }
    (
        sim.metrics().sent as f64 / ops as f64,
        Stats::from_samples(lats).unwrap(),
    )
}

/// Largest f such that crashing nodes n-f..n still lets a write+read pair
/// complete.
fn observed_resilience(n: usize, q: &Arc<dyn QuorumSystem>) -> usize {
    let mut best = 0;
    for f in 0..n {
        let mut sim = build(n, Arc::clone(q), 31);
        for i in n - f..n {
            sim.crash_at(0, ProcessId(i));
        }
        sim.invoke_at(10, ProcessId(0), RegisterOp::Write(1));
        if !sim.run_until_ops_complete(5_000_000_000) {
            break;
        }
        sim.invoke(ProcessId(0), RegisterOp::Read);
        if !sim.run_until_ops_complete(10_000_000_000) {
            break;
        }
        best = f;
    }
    best
}

fn main() {
    let mut t = Table::new(
        "F4 — quorum families on the MWMR emulation (n = 16 where applicable)",
        &[
            "quorum system",
            "valid (MW)",
            "msgs/op",
            "mean µs",
            "p99 µs",
            "observed max f",
            "paper bound f",
        ],
    );
    let n = 16;
    let families: Vec<Arc<dyn QuorumSystem>> = vec![
        Arc::new(Majority::new(n)),
        Arc::new(Threshold::new(n, 5, 12)),
        Arc::new(Threshold::new(n, 12, 9)),
        Arc::new(Grid::new(4, 4)),
    ];
    for q in families {
        let valid = q.validate(true).is_ok();
        let (msgs, s) = measure(n, Arc::clone(&q));
        let f = observed_resilience(n, &q);
        t.row(vec![
            q.describe(),
            if valid { "yes" } else { "NO" }.to_string(),
            format!("{msgs:.1}"),
            us(s.mean),
            us(s.p99),
            f.to_string(),
            (n.div_ceil(2) - 1).to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape checks: the majority row attains the paper's optimal resilience\n(f = ceil(n/2)-1 = 7 for n = 16); threshold systems trade read latency against\nwrite latency and resilience; the grid needs a surviving full column, so its\nobserved resilience is lower — smaller quorums are not free."
    );
}
