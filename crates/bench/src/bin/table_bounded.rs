//! **T6 — bounded vs unbounded timestamps** (the second half of the JACM
//! paper: labels need not grow with the execution).
//!
//! Runs the unbounded and the bounded single-writer protocols through the
//! same long write/read workloads and reports the label metadata each one
//! carries on the wire:
//!
//! * unbounded: the sequence number grows linearly with the number of
//!   writes — after `k` writes it needs `⌈log2(k)⌉` bits *and keeps
//!   growing*;
//! * bounded: a constant `log2(modulus)` bits forever, with zero window
//!   violations (the simulator's delays respect the bounded-staleness
//!   assumption; see `abd_core::bounded` for the substitution notes).

use abd_bench::Table;
use abd_core::bounded::{BoundedSwmrConfig, BoundedSwmrNode, LabelSpace};
use abd_core::msg::RegisterOp;
use abd_core::swmr::SwmrNode;
use abd_core::types::ProcessId;
use abd_simnet::{LatencyModel, Sim, SimConfig};

fn main() {
    let n = 5;
    let mut t = Table::new(
        "T6 — label metadata after k writes (n = 5)",
        &[
            "writes k",
            "unbounded: max seq",
            "unbounded: bits",
            "bounded: modulus",
            "bounded: bits",
            "window violations",
            "final read",
        ],
    );

    for k in [100u64, 1_000, 10_000, 100_000] {
        // Unbounded protocol.
        let nodes: Vec<SwmrNode<u64>> = (0..n)
            .map(|i| {
                SwmrNode::new(
                    abd_core::presets::atomic_swmr(n, ProcessId(i), ProcessId(0)),
                    0,
                )
            })
            .collect();
        let mut sim = Sim::new(
            SimConfig::new(k).with_latency(LatencyModel::Constant(500)),
            nodes,
        );
        for v in 1..=k {
            sim.invoke(ProcessId(0), RegisterOp::Write(v));
            assert!(sim.run_until_quiet(u64::MAX / 2));
        }
        let max_seq = sim.node(0).replica_state().0;
        let unbounded_bits = 64 - max_seq.leading_zeros();

        // Bounded protocol, same workload.
        let space = LabelSpace::new(64);
        let bnodes: Vec<BoundedSwmrNode<u64>> = (0..n)
            .map(|i| {
                BoundedSwmrNode::new(
                    BoundedSwmrConfig::new(n, ProcessId(i), ProcessId(0)).with_space(space),
                    0,
                )
            })
            .collect();
        let mut bsim = Sim::new(
            SimConfig::new(k ^ 0xb0b).with_latency(LatencyModel::Constant(500)),
            bnodes,
        );
        for v in 1..=k {
            bsim.invoke(ProcessId(0), RegisterOp::Write(v));
            assert!(bsim.run_until_quiet(u64::MAX / 2));
        }
        bsim.invoke(ProcessId(2), RegisterOp::Read);
        assert!(bsim.run_until_quiet(u64::MAX / 2));
        let last = bsim.completed().last().unwrap();
        let read_ok = matches!(
            last.resp,
            abd_core::msg::RegisterResp::ReadOk(v) if v == k
        );
        assert!(
            read_ok,
            "bounded read must return the last write after {k} writes"
        );
        let violations: u64 = (0..n).map(|i| bsim.node(i).window_violations()).sum();
        assert_eq!(
            violations, 0,
            "no comparison may escape the window under synchrony"
        );

        t.row(vec![
            k.to_string(),
            max_seq.to_string(),
            unbounded_bits.to_string(),
            space.modulus().to_string(),
            space.label_bits().to_string(),
            violations.to_string(),
            "correct".to_string(),
        ]);
    }
    t.print();
    println!(
        "\nThe unbounded column grows with the execution; the bounded column is constant\n(6 bits for a 64-label cycle) no matter how many writes run — the property the\npaper's bounded construction establishes."
    );
}
