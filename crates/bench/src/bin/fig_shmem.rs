//! **F5 — the portability dividend and its price.**
//!
//! The paper's punchline: any wait-free shared-memory algorithm runs
//! unchanged on message passing. This figure runs the `abd-shmem`
//! algorithms (counter, max-register, atomic snapshot) over two register
//! substrates:
//!
//! * process-local atomic registers (the shared-memory model), and
//! * ABD-emulated registers on a 3-node thread cluster (`abd-runtime`),
//!
//! and reports wall-clock cost per operation together with the number of
//! register operations each algorithm operation expands to — the cost
//! model the paper's complexity section predicts: `shared-memory ops ×
//! emulation round trips`.

use abd_bench::{us, Stats, Table};
use abd_runtime::client::{spawn_kv_cluster, KvRegisterArray, KvStoreClient};
use abd_runtime::cluster::Jitter;
use abd_shmem::array::{LocalAtomicArray, RegisterArray};
use abd_shmem::counter::Counter;
use abd_shmem::maxreg::MaxRegister;
use abd_shmem::snapshot::{Segment, SnapshotObject};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const N_PROCS: usize = 3;
const ITERS: u64 = 200;

/// Wraps a register array, counting reads and writes.
#[derive(Clone, Debug)]
struct Counting<R> {
    inner: R,
    reads: Arc<AtomicU64>,
    writes: Arc<AtomicU64>,
}

impl<R> Counting<R> {
    fn new(inner: R) -> Self {
        Counting {
            inner,
            reads: Arc::new(AtomicU64::new(0)),
            writes: Arc::new(AtomicU64::new(0)),
        }
    }
    fn ops(&self) -> u64 {
        self.reads.load(Ordering::Relaxed) + self.writes.load(Ordering::Relaxed)
    }
}

impl<V: Clone, R: RegisterArray<V>> RegisterArray<V> for Counting<R> {
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn read(&mut self, i: usize) -> V {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read(i)
    }
    fn write(&mut self, i: usize, v: V) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write(i, v);
    }
}

fn bench_op<F: FnMut()>(mut f: F) -> Stats {
    let mut samples = Vec::with_capacity(ITERS as usize);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    Stats::from_samples(samples).unwrap()
}

fn push(t: &mut Table, alg: &str, substrate: &str, ops_per: f64, s: &Stats) {
    t.row(vec![
        alg.into(),
        substrate.into(),
        format!("{ops_per:.0}"),
        us(s.mean),
        us(s.p99),
    ]);
}

fn counter_rows<R: RegisterArray<u64> + Clone>(name: &str, arr: R, t: &mut Table) {
    let arr = Counting::new(arr);
    let mut c = Counter::new(0, arr.clone());
    let inc = bench_op(|| c.increment());
    let inc_ops = arr.ops() as f64 / ITERS as f64;
    let before = arr.ops();
    let val = bench_op(|| {
        c.value();
    });
    let val_ops = (arr.ops() - before) as f64 / ITERS as f64;
    push(t, "counter.increment", name, inc_ops, &inc);
    push(t, "counter.value", name, val_ops, &val);
}

fn maxreg_rows<R: RegisterArray<u64> + Clone>(name: &str, arr: R, t: &mut Table) {
    let arr = Counting::new(arr);
    let mut m = MaxRegister::new(0, arr.clone());
    let mut v = 0;
    let w = bench_op(|| {
        v += 1;
        m.write_max(v);
    });
    let w_ops = arr.ops() as f64 / ITERS as f64;
    let before = arr.ops();
    let r = bench_op(|| {
        m.read();
    });
    let r_ops = (arr.ops() - before) as f64 / ITERS as f64;
    push(t, "maxreg.write_max", name, w_ops, &w);
    push(t, "maxreg.read", name, r_ops, &r);
}

fn snapshot_rows<R: RegisterArray<Segment<u64>> + Clone>(name: &str, arr: R, t: &mut Table) {
    let arr = Counting::new(arr);
    let mut s = SnapshotObject::new(0, arr.clone());
    let mut v = 0;
    let upd = bench_op(|| {
        v += 1;
        s.update(v);
    });
    let upd_ops = arr.ops() as f64 / ITERS as f64;
    let before = arr.ops();
    let scan = bench_op(|| {
        s.scan();
    });
    let scan_ops = (arr.ops() - before) as f64 / ITERS as f64;
    push(t, "snapshot.update", name, upd_ops, &upd);
    push(t, "snapshot.scan", name, scan_ops, &scan);
}

fn main() {
    let mut t = Table::new(
        "F5 — shared-memory algorithms over local vs ABD-emulated registers (3 replicas)",
        &[
            "algorithm / op",
            "substrate",
            "register ops/op",
            "mean µs",
            "p99 µs",
        ],
    );

    let kv_cluster_u64 = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
    // Separate cluster for the max-register so key spaces do not overlap.
    let kv_cluster_u64b = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
    let kv_cluster_seg = spawn_kv_cluster::<u64, Segment<u64>>(3, Jitter::None);

    counter_rows(
        "local registers",
        LocalAtomicArray::new(N_PROCS, 0u64),
        &mut t,
    );
    counter_rows(
        "ABD emulation",
        KvRegisterArray::new(KvStoreClient::new(kv_cluster_u64.client(0)), N_PROCS, 0u64),
        &mut t,
    );
    maxreg_rows(
        "local registers",
        LocalAtomicArray::new(N_PROCS, 0u64),
        &mut t,
    );
    maxreg_rows(
        "ABD emulation",
        KvRegisterArray::new(KvStoreClient::new(kv_cluster_u64b.client(0)), N_PROCS, 0u64),
        &mut t,
    );
    snapshot_rows(
        "local registers",
        LocalAtomicArray::new(N_PROCS, Segment::initial(N_PROCS, 0u64)),
        &mut t,
    );
    snapshot_rows(
        "ABD emulation",
        KvRegisterArray::new(
            KvStoreClient::new(kv_cluster_seg.client(0)),
            N_PROCS,
            Segment::initial(N_PROCS, 0u64),
        ),
        &mut t,
    );

    t.print();
    println!(
        "\nShape checks: register ops per algorithm operation are identical on both\nsubstrates (the algorithms are untouched — the paper's portability claim);\nwall-clock cost scales by the emulation's round trips per register op.\nScan costs ~2n register reads (clean double collect), update ~scan + 2."
    );
}
