//! **T5 — atomicity across adversarial schedules** (the paper's
//! correctness theorem, plus what the cheaper baselines give up).
//!
//! Thousands of seeded adversarial executions (high-variance delays,
//! duplication, concurrent readers) are run for each protocol variant and
//! every resulting history is checked:
//!
//! * Wing–Gong linearizability (ground truth, all variants);
//! * regularity violations (stale / future reads);
//! * new/old inversions (regular-but-not-atomic anomaly — exactly what the
//!   paper's read write-back eliminates).
//!
//! Expected shape: the ABD variants pass **every** schedule; dropping the
//! write-back keeps regularity but leaks inversions; read-one/write-majority
//! is not even regular. The binary asserts the ABD rows are violation-free.

use abd_bench::clusters::{mwmr_sim, swmr_sim, Variant};
use abd_bench::Table;
use abd_lincheck::{
    check_linearizable_with_limit, check_regular_swmr, find_new_old_inversions, Anomaly,
    CheckResult,
};
use abd_simnet::workload::{run_workload, WorkloadConfig, WriterMode};
use abd_simnet::{LatencyModel, SimConfig};

struct Tally {
    schedules: u64,
    linearizable: u64,
    not_linearizable: u64,
    unknown: u64,
    stale_reads: u64,
    inversions: u64,
}

fn sweep(variant: Variant, n: usize, seeds: u64) -> Tally {
    let mut tally = Tally {
        schedules: 0,
        linearizable: 0,
        not_linearizable: 0,
        unknown: 0,
        stale_reads: 0,
        inversions: 0,
    };
    for seed in 0..seeds {
        // Bimodal delays make writes straggle across many fast reads —
        // the window where regular reads can invert and read-one reads go
        // stale.
        let sim_cfg = SimConfig::new(seed)
            .with_latency(LatencyModel::Bimodal {
                fast: 500,
                slow: 80_000,
                slow_prob: 0.25,
            })
            .with_duplication(0.05);
        let wl_writers = if variant.is_single_writer() {
            WriterMode::Single(abd_core::types::ProcessId(0))
        } else {
            WriterMode::All
        };
        let wl = WorkloadConfig::new(seed ^ 0xabd, 10, wl_writers).with_write_ratio(0.4);
        let think = 3_000; // spreads zero-duration local reads over the run
        let history = if variant.is_single_writer() {
            let mut sim = swmr_sim(variant, n, sim_cfg, None);
            run_workload(&mut sim, &wl, think, 10_000_000_000, true)
        } else {
            let mut sim = mwmr_sim(variant, n, sim_cfg, None);
            run_workload(&mut sim, &wl, think, 10_000_000_000, true)
        };
        let Some(history) = history else { continue };
        tally.schedules += 1;
        match check_linearizable_with_limit(&history, 500_000) {
            CheckResult::Linearizable => tally.linearizable += 1,
            CheckResult::NotLinearizable => tally.not_linearizable += 1,
            CheckResult::Unknown => tally.unknown += 1,
        }
        if variant.is_single_writer() {
            tally.stale_reads += check_regular_swmr(&history)
                .iter()
                .filter(|a| matches!(a, Anomaly::StaleRead { .. } | Anomaly::FutureRead { .. }))
                .count() as u64;
            tally.inversions += find_new_old_inversions(&history).len() as u64;
        }
    }
    tally
}

fn main() {
    let seeds: u64 = std::env::var("ABD_T5_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let n = 5;
    let mut t = Table::new(
        &format!("T5 — consistency over {seeds} adversarial schedules each (n = {n})"),
        &[
            "variant",
            "schedules",
            "linearizable",
            "NOT linearizable",
            "stale reads",
            "new/old inversions",
        ],
    );
    for variant in [
        Variant::AtomicSwmr,
        Variant::RegularSwmr,
        Variant::ReadOneSwmr,
        Variant::AtomicMwmr,
        Variant::RegularMwmr,
    ] {
        let tally = sweep(variant, n, seeds);
        if matches!(variant, Variant::AtomicSwmr | Variant::AtomicMwmr) {
            assert_eq!(
                tally.not_linearizable,
                0,
                "{}: the paper's protocol produced a non-linearizable history!",
                variant.name()
            );
            assert_eq!(tally.stale_reads, 0);
            assert_eq!(tally.inversions, 0);
        }
        t.row(vec![
            variant.name().to_string(),
            tally.schedules.to_string(),
            tally.linearizable.to_string(),
            format!(
                "{}{}",
                tally.not_linearizable,
                if tally.unknown > 0 {
                    format!(" (+{} unknown)", tally.unknown)
                } else {
                    String::new()
                }
            ),
            tally.stale_reads.to_string(),
            tally.inversions.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nABD rows are asserted violation-free; the baselines' nonzero columns are the\nanomalies the write-back (and proper quorum intersection) exist to prevent."
    );
}
