//! **F7 — search fitness: coverage-guided vs. blind nemesis search over a
//! planted-mutant zoo.**
//!
//! Five deliberately broken SWMR variants — each attacking one load-bearing
//! step of the paper's correctness argument — are hunted by two adversaries
//! under the same campaign budget:
//!
//! * `guided` — [`guided_search`]: corpus + mutation operators over fault
//!   schedules, steered by protocol-state coverage novelty;
//! * `blind` — [`blind_search`]: one fresh planner schedule per seed, the
//!   pre-existing `explore::sweep` shape.
//!
//! The fitness metric is **mean schedules-to-detect** (campaigns run until
//! the oracle first trips), censored at the budget when a trial never
//! detects. The gate: guided must beat blind on all 5 of the 5
//! mutants, and must detect the dropped-write-back mutant within budget.
//!
//! Each mutant's first guided detection then round-trips through the full
//! failure-artifact pipeline: `check_or_emit` emits a `.ron` under
//! `target/search-repro/`, the emitted file is re-parsed, shrunk twice,
//! and the minimized artifact must be byte-identical across both shrinks
//! with a stable replay digest — detections are *replayable evidence*, not
//! just counters.
//!
//! Everything comes from the virtual clock and seeded RNGs, so
//! `BENCH_search.json` is byte-reproducible; `--smoke` runs the identical
//! computation (the full run is already cheap) and must leave the JSON
//! unchanged.

use abd_core::msg::RegisterOp;
use abd_simnet::repro::Repro;
use abd_simnet::shrink::shrink;
use abd_simnet::{
    blind_search, guided_search, MutantKind, OracleSpec, ProtocolSpec, SearchSpec, SimConfig,
};

const N: usize = 5;
const BACKOFF_BASE: u64 = 20_000;
const SIM_SEED: u64 = 4;
const THINK: u64 = 2_500;
const OPS: u64 = 150;
const BUDGET: usize = 48;
const TRIALS: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// The zoo: stable artifact name + protocol wiring per mutant.
fn mutants() -> Vec<(&'static str, ProtocolSpec)> {
    vec![
        ("dropped-write-back", ProtocolSpec::PlantedSwmr { every: 1 }),
        (
            "stale-tag-ack",
            ProtocolSpec::MutantSwmr {
                mutant: MutantKind::StaleTagAck,
                every: 12,
            },
        ),
        (
            "off-by-one-quorum",
            ProtocolSpec::MutantSwmr {
                mutant: MutantKind::OffByOneQuorum,
                every: 8,
            },
        ),
        (
            "recovery-skips-query",
            ProtocolSpec::MutantSwmr {
                mutant: MutantKind::RecoverySkipsQuery,
                every: 0,
            },
        ),
        (
            "non-monotonic-tag",
            ProtocolSpec::MutantSwmr {
                mutant: MutantKind::NonMonotonicTag,
                every: 0,
            },
        ),
    ]
}

/// The shared campaign frame: one dedicated writer racing four readers,
/// scripts long enough that clients stay busy across the whole fault
/// horizon (faults that fire after the workload drains provoke nothing).
fn spec(name: &str, protocol: ProtocolSpec) -> SearchSpec {
    let scripts = (0..N)
        .map(|c| {
            (0..OPS)
                .map(|k| {
                    if c == 0 {
                        RegisterOp::Write(k + 1)
                    } else {
                        RegisterOp::Read
                    }
                })
                .collect()
        })
        .collect();
    SearchSpec {
        name: format!("search-{name}"),
        protocol,
        n: N,
        backoff_base: Some(BACKOFF_BASE),
        sim: SimConfig::new(SIM_SEED),
        scripts,
        think: THINK,
        oracle: OracleSpec::AtomicSwmr,
        deadline_slack: 200_000_000,
    }
}

struct MutantResult {
    name: &'static str,
    guided_mean: f64,
    blind_mean: f64,
    guided_detections: usize,
    blind_detections: usize,
    /// First guided detection, round-tripped: (faults before, faults after
    /// shrinking, minimal artifact's replay digest).
    artifact: Option<(usize, usize, u64)>,
}

impl MutantResult {
    fn guided_wins(&self) -> bool {
        self.guided_mean < self.blind_mean
    }
}

/// `check_or_emit` → re-parse the emitted file → shrink twice → replay the
/// minimal artifact twice. Every step must be bit-for-bit stable, proving
/// the detection survives the whole evidence pipeline.
fn round_trip_artifact(detection: Repro) -> (usize, usize, u64) {
    let faults_before = detection.schedule.faults().len();
    let err = detection
        .check_or_emit()
        .expect_err("a detection must fail when replayed");
    let path = err
        .split("repro artifact: ")
        .nth(1)
        .and_then(|s| s.split(" —").next())
        .expect("check_or_emit names the emitted artifact");
    let text = std::fs::read_to_string(path).expect("emitted artifact is readable");
    let parsed = Repro::from_ron(&text).expect("emitted artifact parses");

    let first = shrink(&parsed).expect("emitted artifact shrinks");
    let second = shrink(&parsed).expect("emitted artifact shrinks again");
    assert_eq!(
        first.minimal.to_ron(),
        second.minimal.to_ron(),
        "shrinking must be deterministic: two runs, one minimal artifact"
    );
    let d1 = first.minimal.run().digest;
    let d2 = first.minimal.run().digest;
    assert_eq!(d1, d2, "minimal artifact must replay bit-identically");
    assert!(
        first.minimal.run().failure.is_some(),
        "minimal artifact must still fail"
    );
    (faults_before, first.minimal.schedule.faults().len(), d1)
}

fn hunt(name: &'static str, protocol: ProtocolSpec) -> MutantResult {
    let s = spec(name, protocol);
    let mut guided_total = 0usize;
    let mut blind_total = 0usize;
    let mut guided_detections = 0usize;
    let mut blind_detections = 0usize;
    let mut artifact = None;
    for seed in TRIALS {
        let g = guided_search(&s, seed, BUDGET);
        guided_total += g.campaigns;
        if let Some(det) = g.detection {
            guided_detections += 1;
            if artifact.is_none() {
                artifact = Some(round_trip_artifact(det));
            }
        }
        let b = blind_search(&s, seed, BUDGET);
        blind_total += b.campaigns;
        if b.detection.is_some() {
            blind_detections += 1;
        }
    }
    MutantResult {
        name,
        guided_mean: guided_total as f64 / TRIALS.len() as f64,
        blind_mean: blind_total as f64 / TRIALS.len() as f64,
        guided_detections,
        blind_detections,
        artifact,
    }
}

fn mutant_json(r: &MutantResult) -> String {
    let artifact = match r.artifact {
        Some((before, after, digest)) => format!(
            "{{\"faults_before\": {before}, \"faults_after\": {after}, \
             \"min_digest\": \"{digest:#018x}\"}}"
        ),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"guided_mean\": {:.2}, \"blind_mean\": {:.2}, ",
            "\"guided_detections\": {}, \"blind_detections\": {}, ",
            "\"guided_wins\": {}, \"artifact\": {}}}"
        ),
        r.name,
        r.guided_mean,
        r.blind_mean,
        r.guided_detections,
        r.blind_detections,
        r.guided_wins(),
        artifact,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Search detections are evidence, not CI litter: keep them out of the
    // soak artifacts' directory.
    std::env::set_var("ABD_REPRO_DIR", "target/search-repro");

    let results: Vec<MutantResult> = mutants()
        .into_iter()
        .map(|(name, protocol)| hunt(name, protocol))
        .collect();

    println!(
        "F7 — schedules-to-detect, guided vs blind (n={N}, budget {BUDGET}, \
         {} trials, censored at budget)",
        TRIALS.len()
    );
    println!(
        "  {:<22} {:>12} {:>12} {:>10} {:>9}",
        "mutant", "guided mean", "blind mean", "det (g/b)", "winner"
    );
    for r in &results {
        println!(
            "  {:<22} {:>12.2} {:>12.2} {:>10} {:>9}",
            r.name,
            r.guided_mean,
            r.blind_mean,
            format!("{}/{}", r.guided_detections, r.blind_detections),
            if r.guided_wins() { "guided" } else { "blind" },
        );
    }

    let wins = results.iter().filter(|r| r.guided_wins()).count();
    println!(
        "\nguided beats blind on {wins}/{} mutants (gate: >= 5)",
        results.len()
    );
    assert!(
        wins >= 5,
        "guided search must beat blind on all 5 of 5 mutants"
    );
    let dropped = &results[0];
    assert!(
        dropped.guided_detections > 0,
        "guided search must detect the dropped write-back within budget"
    );
    assert!(
        dropped.artifact.is_some(),
        "the dropped-write-back detection must round-trip to a minimal artifact"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"F7_search\",\n",
            "  \"n\": {}, \"budget\": {}, \"trials\": {}, \"sim_seed\": {}, ",
            "\"ops_per_client\": {}, \"think_ns\": {},\n",
            "  \"mutants\": [\n{}\n  ],\n",
            "  \"guided_wins\": {}\n",
            "}}\n"
        ),
        N,
        BUDGET,
        TRIALS.len(),
        SIM_SEED,
        OPS,
        THINK,
        results
            .iter()
            .map(mutant_json)
            .collect::<Vec<_>>()
            .join(",\n"),
        wins,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    std::fs::write(path, &json).expect("write BENCH_search.json");
    println!("wrote BENCH_search.json");

    if smoke {
        println!("--smoke: full computation ran (it is the smoke test)");
    }
}
