//! `abd_repro` — replay, shrink and explain failure-repro artifacts.
//!
//! Nemesis soaks emit `.ron` artifacts under `target/repro/` when a
//! campaign fails (see `abd_simnet::repro`). This CLI closes the loop:
//!
//! ```text
//! abd_repro replay  <artifact.ron>             # reproduce bit-for-bit
//! abd_repro shrink  <artifact.ron> [-o OUT]    # minimize the campaign
//! abd_repro explain <artifact.ron>             # describe without running
//! ```
//!
//! `replay` exits 0 when the artifact's failure reproduces **and** the
//! trace digest matches the recorded one (the artifact is faithful); it
//! exits 1 when the run passes (the bug is gone — delete the artifact) or
//! diverges from the recording. `shrink` exits 0 with a minimal artifact
//! written next to the input (or to `-o`), and nonzero when the input no
//! longer fails. `explain` prints the configuration and the fault
//! timeline, then runs the campaign once under the observation-only
//! coverage tap and lists the protocol-state coverage cells the execution
//! lights — the same cells `abd_simnet::search` steers by, so an
//! artifact's cells can be compared against a search corpus directly.

use abd_core::types::ReadMode;
use abd_simnet::repro::Repro;
use abd_simnet::shrink::shrink;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: abd_repro <replay|shrink|explain> <artifact.ron> [options]\n\
         \n\
         replay  <artifact.ron>           replay the campaign; verify the failure and\n\
         \u{20}                                the recorded trace digest reproduce\n\
         shrink  <artifact.ron> [-o OUT]  minimize the failing campaign (ddmin over\n\
         \u{20}                                faults, durations, and scripts); writes\n\
         \u{20}                                OUT (default: <artifact>.min.ron)\n\
         explain <artifact.ron>           print the configuration, the fault timeline,\n\
         \u{20}                                and the coverage cells the campaign hits"
    );
    ExitCode::from(2)
}

fn load(path: &Path) -> Result<Repro, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Repro::from_ron(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn describe(r: &Repro) {
    println!("artifact:  {}", r.name);
    println!("protocol:  {:?}", r.protocol);
    let g = r.protocol.phase_graph();
    println!("phases:    {g} (lint phase graph; `abd-lint --dot-dir target/lint` renders {g}.dot)");
    if r.protocol.read_mode() == ReadMode::Relay {
        println!(
            "read path: relay — reads walk `Invoke -> RelayRead -> Done` in {g}.dot \
             (server-to-server forwarding; atomicity argument in DESIGN.md §13)"
        );
    }
    println!(
        "cluster:   n = {}, backoff_base = {:?}, think = {}, deadline = {}",
        r.n, r.backoff_base, r.think, r.deadline
    );
    println!("network:   {:?}", r.sim);
    println!("oracle:    {:?}", r.oracle);
    println!(
        "scripts:   {} clients, {} ops total",
        r.scripts.len(),
        r.scripts.iter().map(Vec::len).sum::<usize>()
    );
    println!("digest:    {:#018x}", r.expected_digest);
    if !r.reason.is_empty() {
        println!("reason:    {}", r.reason.replace('\n', "\n           "));
    }
    println!("schedule:\n{}", r.schedule.timeline());
}

fn cmd_replay(path: &Path) -> Result<ExitCode, String> {
    let r = load(path)?;
    println!(
        "replaying '{}' ({} faults, {:?} oracle)...",
        r.name,
        r.schedule.faults().len(),
        r.oracle
    );
    let out = r.run();
    match &out.failure {
        None => {
            println!("PASS: the campaign no longer fails — the artifact is stale");
            Ok(ExitCode::FAILURE)
        }
        Some(f) => {
            println!("failure reproduced: {f}");
            if out.digest == r.expected_digest {
                println!("trace digest matches the recording ({:#018x})", out.digest);
                Ok(ExitCode::SUCCESS)
            } else {
                println!(
                    "DIGEST MISMATCH: recorded {:#018x}, replayed {:#018x} — \
                     the artifact does not describe this execution",
                    r.expected_digest, out.digest
                );
                Ok(ExitCode::FAILURE)
            }
        }
    }
}

fn cmd_shrink(path: &Path, out_path: Option<PathBuf>) -> Result<ExitCode, String> {
    let r = load(path)?;
    println!(
        "shrinking '{}' ({} faults, {} ops)...",
        r.name,
        r.schedule.faults().len(),
        r.scripts.iter().map(Vec::len).sum::<usize>()
    );
    let outcome = shrink(&r)?;
    println!("{}", outcome.report());
    let out_path = out_path.unwrap_or_else(|| {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("artifact");
        path.with_file_name(format!("{stem}.min.ron"))
    });
    std::fs::write(&out_path, outcome.minimal.to_ron())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    println!("minimal artifact written to {}", out_path.display());
    Ok(ExitCode::SUCCESS)
}

fn cmd_explain(path: &Path) -> Result<ExitCode, String> {
    let r = load(path)?;
    describe(&r);
    // One tapped run (bit-identical to an untapped one) to show which
    // protocol-state corners this campaign actually reaches — the same
    // cells the coverage-guided search steers by.
    let (_, cov) = r.run_with_coverage();
    println!("coverage:  {} cells", cov.len());
    for cell in cov.cells() {
        println!("  {cell}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return usage(),
    };
    let mut path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "-o" | "--out" => {
                if i + 1 >= rest.len() {
                    return usage();
                }
                out = Some(PathBuf::from(&rest[i + 1]));
                i += 2;
            }
            a if path.is_none() && !a.starts_with('-') => {
                path = Some(PathBuf::from(a));
                i += 1;
            }
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let result = match cmd {
        "replay" => cmd_replay(&path),
        "shrink" => cmd_shrink(&path, out),
        "explain" => cmd_explain(&path),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("abd_repro: {e}");
            ExitCode::FAILURE
        }
    }
}
