//! **E1 (extension) — Byzantine replicas: masking quorums vs plain
//! majorities** (Malkhi–Reiter's follow-up, cited by the Dijkstra Prize
//! account as the key generalization of ABD's quorums).
//!
//! Seeded sweeps with one (or two) lying replicas in the cluster. For each
//! lie strategy the table reports how many reads returned a wrong value:
//!
//! * the plain majority protocol (ABD parameters, `b = 0` masking
//!   threshold) believes whatever the liar reports — forged labels win the
//!   max, poisoning reads;
//! * the masking-quorum protocol (`n = 4b + 1`, quorum `3b + 1`, accept a
//!   pair only with `b + 1` identical vouchers) returns correct values on
//!   every schedule, asserted.

use abd_bench::Table;
use abd_core::byzantine::{ByzConfig, ByzNode, LieStrategy};
use abd_core::msg::{RegisterOp, RegisterResp};
use abd_core::types::ProcessId;
use abd_simnet::{LatencyModel, Sim, SimConfig};

fn sweep(b: usize, n: usize, lie: LieStrategy, liar: usize, seeds: u64) -> (u64, u64) {
    let mut reads = 0u64;
    let mut wrong = 0u64;
    for seed in 0..seeds {
        let nodes = (0..n)
            .map(|i| {
                let mut cfg = ByzConfig::new(n, ProcessId(i), ProcessId(0), b);
                if i == liar {
                    cfg = cfg.with_lie(lie);
                }
                ByzNode::new(cfg, 0u64)
            })
            .collect();
        let mut sim: Sim<ByzNode<u64>> = Sim::new(
            SimConfig::new(seed).with_latency(LatencyModel::Uniform {
                lo: 100,
                hi: 30_000,
            }),
            nodes,
        );
        // Sequential rounds: each write completes before its reads start,
        // so a correct protocol must return exactly the round's value.
        for round in 1..=6u64 {
            sim.invoke(ProcessId(0), RegisterOp::Write(round));
            assert!(sim.run_until_ops_complete(600_000_000_000), "seed {seed}");
            let before = sim.completed().len();
            for reader in 2..n.min(5) {
                sim.invoke(ProcessId(reader), RegisterOp::Read);
            }
            assert!(sim.run_until_ops_complete(600_000_000_000), "seed {seed}");
            for r in &sim.completed()[before..] {
                if let (RegisterOp::Read, RegisterResp::ReadOk(v)) = (&r.input, &r.resp) {
                    reads += 1;
                    if *v != round {
                        wrong += 1;
                    }
                }
            }
        }
    }
    (reads, wrong)
}

fn main() {
    let seeds = 60;
    let mut t = Table::new(
        &format!("E1 — Byzantine replica sweeps ({seeds} seeds each, 1 liar unless noted)"),
        &["protocol", "lie strategy", "reads", "wrong reads"],
    );
    for lie in [
        LieStrategy::ReportStale,
        LieStrategy::ForgeLabel,
        LieStrategy::Silent,
    ] {
        // Plain majority (b = 0 masking; ABD parameters) on n = 5, liar at 1.
        let (reads, wrong) = sweep(0, 5, lie, 1, seeds);
        t.row(vec![
            "plain majority (ABD)".into(),
            format!("{lie:?}"),
            reads.to_string(),
            wrong.to_string(),
        ]);
        // Masking quorums, b = 1, n = 5.
        let (reads, wrong) = sweep(1, 5, lie, 1, seeds);
        assert_eq!(wrong, 0, "masking quorums must mask {lie:?}");
        t.row(vec![
            "masking quorum (b=1)".into(),
            format!("{lie:?}"),
            reads.to_string(),
            wrong.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nShape checks: the ForgeLabel row poisons the plain protocol (wrong > 0) while\nevery masking row is asserted wrong = 0. Crash-tolerance (ABD) and\nByzantine-tolerance (Malkhi–Reiter) genuinely need different quorum systems."
    );
}
