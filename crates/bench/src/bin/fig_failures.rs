//! **F2 — graceful degradation under crashes and stragglers.**
//!
//! The emulation waits for the **fastest quorum**, so:
//!
//! * crashing up to `⌈n/2⌉ − 1` replicas leaves latency essentially
//!   unchanged (the quorum is formed from the survivors);
//! * a *slow* (not crashed) replica is simply left behind — unlike a
//!   wait-for-all scheme, whose latency is dragged to the straggler's
//!   delay. The second table contrasts quorum waiting with an emulated
//!   wait-for-all configuration (`Threshold(n, n, n)`).

use abd_bench::{us, Stats, Table};
use abd_core::msg::RegisterOp;
use abd_core::quorum::Threshold;
use abd_core::retransmit::BackoffPolicy;
use abd_core::swmr::{SwmrConfig, SwmrNode};
use abd_core::types::{ProcessId, Tag};
use abd_kv::{KvConfig, KvNode};
use abd_simnet::nemesis::liveness_bound;
use abd_simnet::{run_campaign, LatencyModel, NemesisConfig, Sim, SimConfig};
use std::sync::Arc;

fn run_ops(sim: &mut Sim<SwmrNode<u64>>, clients: &[usize], ops: u64) -> Stats {
    let mut lats = Vec::new();
    for k in 0..ops {
        let before = sim.completed().len();
        if k % 2 == 0 {
            sim.invoke(ProcessId(0), RegisterOp::Write(k + 1));
        } else {
            sim.invoke(
                ProcessId(clients[(k as usize) % clients.len()]),
                RegisterOp::Read,
            );
        }
        assert!(sim.run_until_quiet(u64::MAX / 2), "op must complete");
        lats.push(sim.completed()[before].latency());
    }
    Stats::from_samples(lats).unwrap()
}

fn main() {
    let n = 9;
    let lat = LatencyModel::Uniform {
        lo: 5_000,
        hi: 15_000,
    };

    let mut f2a = Table::new(
        "F2a — latency vs crashed replicas (n = 9, majority quorums); µs",
        &["crashed f", "mean", "p99", "note"],
    );
    for f in 0..=4usize {
        let nodes: Vec<SwmrNode<u64>> = (0..n)
            .map(|i| SwmrNode::new(SwmrConfig::new(n, ProcessId(i), ProcessId(0)), 0))
            .collect();
        let mut sim = Sim::new(SimConfig::new(5).with_latency(lat), nodes);
        for i in n - f..n {
            sim.crash_at(0, ProcessId(i));
        }
        let clients: Vec<usize> = (1..n - f).collect();
        let s = run_ops(&mut sim, &clients, 200);
        f2a.row(vec![
            f.to_string(),
            us(s.mean),
            us(s.p99),
            if f == 4 {
                "max tolerated (paper bound)"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    f2a.print();

    let mut f2b = Table::new(
        "F2b — one straggler replica (100x slower): quorum vs wait-for-all (n = 5); µs",
        &["scheme", "mean", "p99"],
    );
    let straggler_lat = LatencyModel::Bimodal {
        fast: 5_000,
        slow: 500_000,
        slow_prob: 0.2,
    };
    for (name, quorum_all) in [
        ("ABD majority quorum", false),
        ("wait-for-all (r=w=n)", true),
    ] {
        let nodes: Vec<SwmrNode<u64>> = (0..5)
            .map(|i| {
                let mut cfg = SwmrConfig::new(5, ProcessId(i), ProcessId(0));
                if quorum_all {
                    cfg = cfg.with_quorum(Arc::new(Threshold::new(5, 5, 5)));
                }
                SwmrNode::new(cfg, 0)
            })
            .collect();
        let mut sim = Sim::new(SimConfig::new(11).with_latency(straggler_lat), nodes);
        let s = run_ops(&mut sim, &[1, 2, 3, 4], 200);
        f2b.row(vec![name.to_string(), us(s.mean), us(s.p99)]);
    }
    f2b.print();

    // F2c — fault accounting under full nemesis campaigns: where do the
    // messages go, and what does recovery cost? Every op still completes
    // and the history stays atomic (the nemesis integration tests assert
    // this); here we only read the meters. The sync columns come from
    // `read_path_metrics` (protocol-internal counters); SWMR registers
    // recover through the ordinary query round, not a sync protocol, so
    // they stay zero here — F2d below shows them live on the KV store.
    let mut f2c = Table::new(
        "F2c — nemesis campaign fault accounting (n = 5, adaptive backoff)",
        &[
            "seed",
            "ops",
            "aborted",
            "restarts",
            "retrans",
            "drop-part",
            "drop-loss",
            "drop-crash",
            "sync-msgs",
            "sync-bytes",
            "sync-entries",
        ],
    );
    let backoff = BackoffPolicy::new(20_000);
    for seed in [7u64, 21, 42] {
        let nodes: Vec<SwmrNode<u64>> = (0..5)
            .map(|i| {
                SwmrNode::new(
                    SwmrConfig::new(5, ProcessId(i), ProcessId(0)).with_backoff(backoff),
                    0,
                )
            })
            .collect();
        let mut sim = Sim::new(SimConfig::new(seed), nodes);
        let sched = NemesisConfig::new(seed, 5).plan();
        sched.apply(&mut sim);
        let scripts: Vec<Vec<RegisterOp<u64>>> = (0..5)
            .map(|c| {
                (0..8u64)
                    .map(|k| {
                        if c == 0 {
                            RegisterOp::Write(k + 1)
                        } else {
                            RegisterOp::Read
                        }
                    })
                    .collect()
            })
            .collect();
        let deadline = sched.heal_at() + liveness_bound(&backoff, 20_000, 10);
        let done = run_campaign(&mut sim, &sched, scripts, 5_000, deadline);
        assert!(done, "campaign seed {seed} must complete after healing");
        sim.run_until(sched.heal_at() + 1); // execute any post-completion faults
        let m = sim.read_path_metrics();
        f2c.row(vec![
            seed.to_string(),
            m.ops_completed.to_string(),
            m.ops_aborted.to_string(),
            m.restarts.to_string(),
            m.retransmissions.to_string(),
            m.dropped_partition.to_string(),
            m.dropped_loss.to_string(),
            m.dropped_crash.to_string(),
            m.recovery_msgs.to_string(),
            m.recovery_bytes.to_string(),
            m.sync_entries_sent.to_string(),
        ]);
    }
    f2c.print();

    // F2d — what a restarted *store* pays to catch up: the same 4-key-stale
    // recovery, once over the bulk snapshot path and once over the Merkle
    // walk. All five replicas hold 256 keys; the four survivors hold 4
    // newer tags the rebooted node lacks. Bulk ships every peer's full
    // snapshot; the walk ships digests until the divergent leaves isolate
    // the 4 keys. (fig_recovery scales this shape to 100k keys and gates
    // the ratio; here it is one table row per mode.)
    let mut f2d = Table::new(
        "F2d — recovery sync accounting: bulk snapshot vs Merkle walk \
         (n = 5, 256-key store, 4 stale keys)",
        &["sync mode", "sync-msgs", "sync-bytes", "entries shipped"],
    );
    for (name, threshold) in [
        ("bulk (SyncPull/SyncState)", usize::MAX),
        ("merkle walk", 0),
    ] {
        let mut nodes: Vec<KvNode<u32, u64>> = (0..5)
            .map(|i| {
                KvNode::new(
                    KvConfig::new(5, ProcessId(i))
                        .with_sync_threshold(threshold)
                        .with_sync_buckets(64),
                )
            })
            .collect();
        for node in &mut nodes {
            for k in 0..256u32 {
                node.preload(k, Tag::new(1, ProcessId(0)), u64::from(k));
            }
        }
        // The rebooted node (4) misses four newer writes the peers hold.
        for node in nodes.iter_mut().take(4) {
            for k in 0..4u32 {
                node.preload(k, Tag::new(2, ProcessId(1)), 1_000 + u64::from(k));
            }
        }
        let mut sim = Sim::new(SimConfig::new(9), nodes);
        sim.crash_at(1_000, ProcessId(4));
        sim.restart_at(2_000, ProcessId(4));
        assert!(
            sim.run_until_quiet(60_000_000_000),
            "recovery quiesces ({name})"
        );
        assert!(!sim.node(4).is_recovering(), "node 4 caught up ({name})");
        for k in 0..4u32 {
            assert_eq!(
                sim.node(4).local_entry(&k).map(|(_, v)| *v),
                Some(1_000 + u64::from(k)),
                "stale key {k} repaired ({name})"
            );
        }
        let m = sim.read_path_metrics();
        f2d.row(vec![
            name.to_string(),
            m.recovery_msgs.to_string(),
            m.recovery_bytes.to_string(),
            m.sync_entries_sent.to_string(),
        ]);
    }
    f2d.print();

    println!(
        "\nShape checks: F2a rows are flat — up to the paper's bound, crashes do not slow\nthe emulation. F2b shows why 'wait for a majority' (not all) is load-bearing:\nthe wait-for-all scheme inherits the straggler's tail, the quorum scheme does not.\nF2c: campaigns crash every node, partition minorities and burn messages, yet all\nsurviving ops complete — retransmissions and restart catch-ups pay the bill.\nF2d: the bulk row ships every peer's whole snapshot (entries ~ store size x\npeers); the Merkle row ships digests plus exactly the divergent keys."
    );
}
