//! **F1 — operation latency tracks message delay, not cluster size.**
//!
//! The emulation waits for quorums, never for all replies, so with
//! identically distributed delays the operation latency is governed by the
//! *median-ish* order statistic of the delay distribution times the number
//! of round trips — essentially flat in `n`. The figure prints two series:
//!
//! * latency vs `n` at a fixed delay distribution (flat-ish lines;
//!   read ≈ 2× write for SWMR);
//! * latency vs the delay scale at fixed `n` (linear in the delay).

use abd_bench::clusters::{swmr_sim, Variant};
use abd_bench::{us, Stats, Table};
use abd_core::msg::RegisterOp;
use abd_core::types::ProcessId;
use abd_simnet::{LatencyModel, SimConfig};

fn series(n: usize, lat: LatencyModel, seed: u64) -> (Stats, Stats) {
    let mut sim = swmr_sim(
        Variant::AtomicSwmr,
        n,
        SimConfig::new(seed).with_latency(lat),
        None,
    );
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    for k in 0..200u64 {
        let before = sim.completed().len();
        if k % 2 == 0 {
            sim.invoke(ProcessId(0), RegisterOp::Write(k + 1));
        } else {
            sim.invoke(ProcessId((k as usize) % (n - 1) + 1), RegisterOp::Read);
        }
        assert!(sim.run_until_quiet(u64::MAX / 2));
        let lat = sim.completed()[before].latency();
        if k % 2 == 0 {
            writes.push(lat);
        } else {
            reads.push(lat);
        }
    }
    (
        Stats::from_samples(writes).unwrap(),
        Stats::from_samples(reads).unwrap(),
    )
}

fn main() {
    let lat = LatencyModel::Uniform {
        lo: 5_000,
        hi: 15_000,
    };
    let mut f1a = Table::new(
        "F1a — latency vs n (delay ~ U[5µs, 15µs]); µs",
        &[
            "n",
            "write mean",
            "write p99",
            "read mean",
            "read p99",
            "read/write",
        ],
    );
    for n in [3usize, 5, 9, 15, 21, 31, 51] {
        let (w, r) = series(n, lat, 42);
        f1a.row(vec![
            n.to_string(),
            us(w.mean),
            us(w.p99),
            us(r.mean),
            us(r.p99),
            format!("{:.2}", r.mean / w.mean),
        ]);
    }
    f1a.print();

    let mut f1b = Table::new(
        "F1b — latency vs delay scale (n = 7); µs",
        &[
            "delay U[d, 3d], d =",
            "write mean",
            "read mean",
            "read/write",
        ],
    );
    for d in [1_000u64, 5_000, 10_000, 50_000, 100_000] {
        let (w, r) = series(7, LatencyModel::Uniform { lo: d, hi: 3 * d }, 43);
        f1b.row(vec![
            us(d as f64),
            us(w.mean),
            us(r.mean),
            format!("{:.2}", r.mean / w.mean),
        ]);
    }
    f1b.print();

    println!(
        "\nShape checks: the F1a columns are nearly flat in n (quorum waiting needs no\nstragglers), reads cost ~2x writes (two round trips vs one), and F1b scales\nlinearly with the delay — latency is a property of the network, not the cluster."
    );
}
