//! A latency-injection thread: messages check in, wait their randomly drawn
//! delay on a timing heap, and are handed to a delivery callback.
//!
//! All deadline arithmetic goes through an injected
//! [`Clock`](abd_core::clock::Clock) — the thread never reads OS time
//! directly, so tests can drive it with a
//! [`ManualClock`](abd_core::clock::ManualClock).

use crate::clock::{Clock, MonotonicClock};
use abd_core::types::Nanos;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running delayer thread. Dropping it stops the thread (any
/// still-buffered messages are dropped — acceptable, since an asynchronous
/// network may lose what is in flight at shutdown).
#[derive(Debug)]
pub struct Delayer<T> {
    tx: Sender<T>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Delayer<T> {
    /// Spawns the delayer on real time: each item sent to
    /// [`sender`](Self::sender) is delivered via `deliver` after a uniformly
    /// random delay in `[lo, hi]` nanoseconds.
    pub fn spawn<F>(lo: Nanos, hi: Nanos, deliver: F) -> Self
    where
        F: FnMut(T) + Send + 'static,
    {
        Self::spawn_with_clock(lo, hi, Arc::new(MonotonicClock::new()), deliver)
    }

    /// Like [`spawn`](Self::spawn), but deadlines are computed against the
    /// given clock.
    pub fn spawn_with_clock<F>(lo: Nanos, hi: Nanos, clock: Arc<dyn Clock>, deliver: F) -> Self
    where
        F: FnMut(T) + Send + 'static,
    {
        assert!(lo <= hi, "delay range must satisfy lo <= hi");
        let (tx, rx) = unbounded::<T>();
        let handle = std::thread::Builder::new()
            .name("abd-delayer".into())
            .spawn(move || delayer_main(rx, lo, hi, clock, deliver))
            .expect("spawn delayer thread");
        Delayer {
            tx,
            handle: Some(handle),
        }
    }

    /// The channel producers push messages into.
    pub fn sender(&self) -> Sender<T> {
        self.tx.clone()
    }
}

impl<T> Drop for Delayer<T> {
    fn drop(&mut self) {
        // Close the channel so the thread's recv errors out and exits.
        let (dead_tx, _) = crossbeam::channel::bounded(0);
        self.tx = dead_tx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct Waiting<T> {
    due: Nanos,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Waiting<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Waiting<T> {}
impl<T> PartialOrd for Waiting<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Waiting<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Pops the earliest entry iff it is due at `now`.
fn pop_due<T>(heap: &mut BinaryHeap<Reverse<Waiting<T>>>, now: Nanos) -> Option<T> {
    if heap.peek().is_some_and(|Reverse(w)| w.due <= now) {
        heap.pop().map(|Reverse(w)| w.item)
    } else {
        None
    }
}

fn delayer_main<T, F: FnMut(T)>(
    rx: Receiver<T>,
    lo: Nanos,
    hi: Nanos,
    clock: Arc<dyn Clock>,
    mut deliver: F,
) {
    let mut rng = SmallRng::from_entropy();
    let mut heap: BinaryHeap<Reverse<Waiting<T>>> = BinaryHeap::new();
    let mut seq = 0u64;
    // Upper bound on one blocking wait. The loop re-reads the clock every
    // iteration, so with a manual clock that never matches real time,
    // delivery still happens within one poll interval of the advance.
    const MAX_WAIT: Duration = Duration::from_millis(5);
    loop {
        // Deliver everything due.
        let now = clock.now();
        while let Some(item) = pop_due(&mut heap, now) {
            deliver(item);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(w)| Duration::from_nanos(w.due.saturating_sub(clock.now())).min(MAX_WAIT))
            .unwrap_or(Duration::from_millis(25));
        match rx.recv_timeout(timeout) {
            Ok(item) => {
                let delay = if hi == lo { lo } else { rng.gen_range(lo..=hi) };
                heap.push(Reverse(Waiting {
                    due: clock.now() + delay,
                    seq,
                    item,
                }));
                seq += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Flush what remains in due order, honouring residual waits.
                while let Some(Reverse(w)) = heap.pop() {
                    let wait = w.due.saturating_sub(clock.now());
                    if wait > 0 {
                        std::thread::sleep(Duration::from_nanos(wait).min(MAX_WAIT));
                    }
                    deliver(w.item);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abd_core::clock::ManualClock;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn delivers_everything_with_delay() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let wall = MonotonicClock::new();
        let delayer = Delayer::spawn(1_000_000, 2_000_000, move |_: u32| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let tx = delayer.sender();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        while count.load(Ordering::SeqCst) < 100 {
            assert!(wall.now() < 10_000_000_000, "delayer stalled");
            std::thread::yield_now();
        }
        assert!(wall.now() >= 1_000_000, "some delay was injected");
    }

    #[test]
    fn delivers_in_due_order_for_constant_delay() {
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        let delayer = Delayer::spawn(500_000, 500_000, move |i: u32| s.lock().push(i));
        let tx = delayer.sender();
        for i in 0..50u32 {
            tx.send(i).unwrap();
        }
        let wall = MonotonicClock::new();
        while seen.lock().len() < 50 {
            assert!(wall.now() < 5_000_000_000);
            std::thread::yield_now();
        }
        let v = seen.lock().clone();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted, "constant delay preserves send order");
    }

    #[test]
    fn drop_flushes_pending() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        {
            let delayer = Delayer::spawn(200_000, 400_000, move |_: u8| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            let tx = delayer.sender();
            for i in 0..10u8 {
                tx.send(i).unwrap();
            }
            drop(tx);
            // Dropping the handle joins the thread, which flushes.
        }
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn manual_clock_gates_delivery() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let clock = Arc::new(ManualClock::new());
        let delayer = Delayer::spawn_with_clock(
            1_000_000_000_000, // far beyond any real test duration
            1_000_000_000_000,
            Arc::clone(&clock) as Arc<dyn Clock>,
            move |_: u32| {
                c.fetch_add(1, Ordering::SeqCst);
            },
        );
        let tx = delayer.sender();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // Real time passes, logical time does not: nothing may be delivered.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            count.load(Ordering::SeqCst),
            0,
            "delivered before its logical due time"
        );
        // Jump logical time past the deadline; the poll loop picks it up.
        clock.advance(2_000_000_000_000);
        let wall = MonotonicClock::new();
        while count.load(Ordering::SeqCst) < 2 {
            assert!(
                wall.now() < 5_000_000_000,
                "delivery never happened after advance"
            );
            std::thread::yield_now();
        }
    }
}
