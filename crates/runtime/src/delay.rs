//! A latency-injection thread: messages check in, wait their randomly drawn
//! delay on a timing heap, and are handed to a delivery callback.

use abd_core::types::Nanos;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Handle to a running delayer thread. Dropping it stops the thread (any
/// still-buffered messages are dropped — acceptable, since an asynchronous
/// network may lose what is in flight at shutdown).
#[derive(Debug)]
pub struct Delayer<T> {
    tx: Sender<T>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Delayer<T> {
    /// Spawns the delayer: each item sent to [`sender`](Self::sender) is
    /// delivered via `deliver` after a uniformly random delay in
    /// `[lo, hi]` nanoseconds.
    pub fn spawn<F>(lo: Nanos, hi: Nanos, deliver: F) -> Self
    where
        F: FnMut(T) + Send + 'static,
    {
        assert!(lo <= hi, "delay range must satisfy lo <= hi");
        let (tx, rx) = unbounded::<T>();
        let handle = std::thread::Builder::new()
            .name("abd-delayer".into())
            .spawn(move || delayer_main(rx, lo, hi, deliver))
            .expect("spawn delayer thread");
        Delayer { tx, handle: Some(handle) }
    }

    /// The channel producers push messages into.
    pub fn sender(&self) -> Sender<T> {
        self.tx.clone()
    }
}

impl<T> Drop for Delayer<T> {
    fn drop(&mut self) {
        // Close the channel so the thread's recv errors out and exits.
        let (dead_tx, _) = crossbeam::channel::bounded(0);
        self.tx = dead_tx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct Waiting<T> {
    due: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Waiting<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Waiting<T> {}
impl<T> PartialOrd for Waiting<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Waiting<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

fn delayer_main<T, F: FnMut(T)>(rx: Receiver<T>, lo: Nanos, hi: Nanos, mut deliver: F) {
    let mut rng = SmallRng::from_entropy();
    let mut heap: BinaryHeap<Reverse<Waiting<T>>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(w)| w.due <= now) {
            let Reverse(w) = heap.pop().expect("peeked");
            deliver(w.item);
        }
        let timeout = heap
            .peek()
            .map(|Reverse(w)| w.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(25));
        match rx.recv_timeout(timeout) {
            Ok(item) => {
                let delay = if hi == lo { lo } else { rng.gen_range(lo..=hi) };
                heap.push(Reverse(Waiting {
                    due: Instant::now() + Duration::from_nanos(delay),
                    seq,
                    item,
                }));
                seq += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Flush what remains, then exit.
                while let Some(Reverse(w)) = heap.pop() {
                    let wait = w.due.saturating_duration_since(Instant::now());
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    deliver(w.item);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn delivers_everything_with_delay() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let start = Instant::now();
        let delayer = Delayer::spawn(1_000_000, 2_000_000, move |_: u32| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        let tx = delayer.sender();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        while count.load(Ordering::SeqCst) < 100 {
            assert!(start.elapsed() < Duration::from_secs(10), "delayer stalled");
            std::thread::yield_now();
        }
        assert!(start.elapsed() >= Duration::from_millis(1), "some delay was injected");
    }

    #[test]
    fn delivers_in_due_order_for_constant_delay() {
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        let delayer = Delayer::spawn(500_000, 500_000, move |i: u32| s.lock().push(i));
        let tx = delayer.sender();
        for i in 0..50u32 {
            tx.send(i).unwrap();
        }
        let start = Instant::now();
        while seen.lock().len() < 50 {
            assert!(start.elapsed() < Duration::from_secs(5));
            std::thread::yield_now();
        }
        let v = seen.lock().clone();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted, "constant delay preserves send order");
    }

    #[test]
    fn drop_flushes_pending() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        {
            let delayer = Delayer::spawn(200_000, 400_000, move |_: u8| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            let tx = delayer.sender();
            for i in 0..10u8 {
                tx.send(i).unwrap();
            }
            drop(tx);
            // Dropping the handle joins the thread, which flushes.
        }
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }
}
