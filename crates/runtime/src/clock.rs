//! The runtime's wall-clock implementation of [`Clock`].
//!
//! This file is the **only** place in the workspace allowed to touch
//! `std::time::Instant`: everything else in the runtime computes deadlines
//! in `Nanos` through an injected `Arc<dyn Clock>`, so tests can substitute
//! [`ManualClock`](abd_core::clock::ManualClock) and the `abd-lint`
//! `wall-clock` rule can pin nondeterministic time to one audited site.

pub use abd_core::clock::{Clock, ManualClock, TickClock};

use abd_core::types::Nanos;
// abd-lint: allow(wall-clock): MonotonicClock is the one sanctioned bridge
// from OS time to the Clock abstraction; all other runtime code takes a
// Clock and stays testable with ManualClock.
use std::time::Instant;

/// Real monotone time, anchored at the moment the clock was created.
#[derive(Clone, Copy, Debug)]
pub struct MonotonicClock {
    epoch: Instant, // abd-lint: allow(wall-clock): see module header
}

impl MonotonicClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> Self {
        // abd-lint: allow(wall-clock): the single Instant::now() read that
        // anchors the runtime's timebase.
        let epoch = Instant::now();
        MonotonicClock { epoch }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Nanos {
        self.epoch.elapsed().as_nanos() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "clock did not advance: {a} -> {b}");
    }
}
