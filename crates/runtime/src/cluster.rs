//! Thread-per-node runtime for sans-io protocols.
//!
//! Each protocol node runs on its own OS thread, receiving network messages
//! and client commands over crossbeam channels and keeping its own timer
//! wheel (serviced via `select!` timeouts). The protocol state machines are
//! the *same objects* the deterministic simulator drives — this crate is
//! the demonstration that the sans-io core runs on a real concurrent
//! transport, and it is what the wall-clock criterion benchmarks measure.

use crate::clock::{Clock, MonotonicClock};
use crate::delay::Delayer;
use abd_core::context::{Effects, Protocol, TimerCmd, TimerKey};
use abd_core::types::{Nanos, OpId, ProcessId};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Network latency injected by the runtime router.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Jitter {
    /// Deliver directly, as fast as the channels go.
    #[default]
    None,
    /// Delay every message by a uniformly random duration in `[lo, hi]`
    /// nanoseconds (routed through a dedicated delayer thread).
    Uniform {
        /// Minimum injected delay.
        lo: Nanos,
        /// Maximum injected delay.
        hi: Nanos,
    },
}

/// Commands a node thread accepts besides network messages.
enum Cmd<P: Protocol> {
    Invoke {
        op: OpId,
        input: P::Op,
        reply: Sender<P::Resp>,
    },
    Crash,
    Restart,
    Shutdown,
}

/// A running cluster of protocol nodes on OS threads.
///
/// Dropping the cluster shuts every thread down.
///
/// # Examples
///
/// ```
/// use abd_core::msg::{RegisterOp, RegisterResp};
/// use abd_core::mwmr::{MwmrConfig, MwmrNode};
/// use abd_core::types::ProcessId;
/// use abd_runtime::cluster::{Cluster, Jitter};
///
/// let cluster = Cluster::spawn(
///     (0..3).map(|i| MwmrNode::new(MwmrConfig::new(3, ProcessId(i)), 0u64)).collect(),
///     Jitter::None,
/// );
/// let c0 = cluster.client(0);
/// assert_eq!(c0.invoke(RegisterOp::Write(7)), RegisterResp::WriteOk);
/// let c2 = cluster.client(2);
/// assert_eq!(c2.invoke(RegisterOp::Read), RegisterResp::ReadOk(7));
/// ```
#[derive(Debug)]
pub struct Cluster<P: Protocol> {
    cmd_txs: Vec<Sender<Cmd<P>>>,
    handles: Vec<JoinHandle<()>>,
    next_op: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
    /// Crash flags shared with every [`Client`], so invocations on a downed
    /// node fail fast instead of waiting out their full timeout.
    crashed: Arc<Vec<AtomicBool>>,
    _delayer: Option<Delayer<(ProcessId, ProcessId, P::Msg)>>,
}

impl<P: Protocol + Send + 'static> Cluster<P> {
    /// Spawns one thread per node (node `i` must have id `i`). With a
    /// [`Jitter`] other than `None`, messages are routed through a delayer
    /// thread that injects random latency.
    pub fn spawn(nodes: Vec<P>, jitter: Jitter) -> Self {
        let n = nodes.len();
        let mut net_txs = Vec::with_capacity(n);
        let mut net_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<(ProcessId, P::Msg)>();
            net_txs.push(tx);
            net_rxs.push(rx);
        }
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Cmd<P>>();
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }

        // The fabric every node sends through: either direct channels or a
        // delayer thread feeding them.
        let delayer = match jitter {
            Jitter::None => None,
            Jitter::Uniform { lo, hi } => {
                let txs = net_txs.clone();
                Some(Delayer::spawn(
                    lo,
                    hi,
                    move |(from, to, msg): (ProcessId, ProcessId, P::Msg)| {
                        let _ = txs[to.index()].send((from, msg));
                    },
                ))
            }
        };

        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            debug_assert_eq!(node.id(), ProcessId(i), "node {i} has wrong id");
            let net_rx = net_rxs.remove(0);
            let cmd_rx = cmd_rxs.remove(0);
            let net_txs = net_txs.clone();
            let delay_tx = delayer.as_ref().map(Delayer::sender);
            let clock = Arc::clone(&clock);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("abd-node-{i}"))
                    .spawn(move || node_main(node, net_rx, cmd_rx, net_txs, delay_tx, clock))
                    .expect("spawn node thread"),
            );
        }
        Cluster {
            cmd_txs,
            handles,
            next_op: Arc::new(AtomicU64::new(0)),
            clock,
            crashed: Arc::new((0..n).map(|_| AtomicBool::new(false)).collect()),
            _delayer: delayer,
        }
    }

    /// Number of nodes in the cluster.
    pub fn n(&self) -> usize {
        self.cmd_txs.len()
    }

    /// The clock all client timing measurements are read from; its epoch is
    /// the moment the cluster was spawned.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// A blocking client bound to node `i`. Clients are cheap to create and
    /// can live on any thread.
    pub fn client(&self, i: usize) -> Client<P> {
        Client {
            node: ProcessId(i),
            cmd_tx: self.cmd_txs[i].clone(),
            next_op: Arc::clone(&self.next_op),
            clock: Arc::clone(&self.clock),
            crashed: Arc::clone(&self.crashed),
        }
    }

    /// Whether node `i` is currently crashed.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i].load(Ordering::Acquire)
    }

    /// Crashes node `i`: it stops processing until a [`restart`](Self::restart),
    /// if any. In-flight invocations on it are abandoned (their clients get
    /// `None`/a panic immediately, not after their full timeout), and new
    /// invocations fail fast while the flag is up. The flag is advisory —
    /// an invocation racing the crash can still wait out its timeout, which
    /// is what [`Client::try_invoke_for`] is for.
    pub fn crash(&self, i: usize) {
        self.crashed[i].store(true, Ordering::Release);
        let _ = self.cmd_txs[i].send(Cmd::Crash);
    }

    /// Reboots crashed node `i`: pending timers die with the old
    /// incarnation, the protocol's `on_restart` runs (catching the replica
    /// up from a read quorum before it serves), and clients may invoke on
    /// it again. Restarting a live node is a no-op.
    pub fn restart(&self, i: usize) {
        let _ = self.cmd_txs[i].send(Cmd::Restart);
        self.crashed[i].store(false, Ordering::Release);
    }
}

impl<P: Protocol> Drop for Cluster<P> {
    fn drop(&mut self) {
        for tx in &self.cmd_txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A blocking client handle bound to one node of a [`Cluster`].
#[derive(Debug)]
pub struct Client<P: Protocol> {
    node: ProcessId,
    cmd_tx: Sender<Cmd<P>>,
    next_op: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
    crashed: Arc<Vec<AtomicBool>>,
}

impl<P: Protocol> Clone for Client<P> {
    fn clone(&self) -> Self {
        Client {
            node: self.node,
            cmd_tx: self.cmd_tx.clone(),
            next_op: Arc::clone(&self.next_op),
            clock: Arc::clone(&self.clock),
            crashed: Arc::clone(&self.crashed),
        }
    }
}

impl<P: Protocol> Client<P> {
    /// The node this client is bound to.
    pub fn node(&self) -> ProcessId {
        self.node
    }

    /// Invokes `input` and blocks until the response arrives.
    ///
    /// # Panics
    ///
    /// Panics — immediately, not after a timeout — if the node is crashed
    /// or shut down (the operation can never complete). For code that must
    /// tolerate crashes without panicking, use
    /// [`try_invoke_for`](Self::try_invoke_for).
    pub fn invoke(&self, input: P::Op) -> P::Resp {
        self.try_invoke_for(input, Duration::from_secs(60))
            .expect("operation did not complete (node crashed or overloaded?)")
    }

    /// Invokes `input`, giving up after `timeout`. Returns `None` on
    /// timeout — the operation may still take effect later (it is not
    /// cancelled), exactly like a real client timing out on a real store.
    ///
    /// This is the escape hatch for operating around crashes: a crashed
    /// target fails fast with `None` (both for new invocations, via the
    /// shared crash flag, and for in-flight ones, whose reply channels the
    /// node drops when it crashes) instead of hanging until the timeout.
    /// Only an invocation racing the crash itself can still wait out
    /// `timeout` — never longer.
    pub fn try_invoke_for(&self, input: P::Op, timeout: Duration) -> Option<P::Resp> {
        if self.crashed[self.node.index()].load(Ordering::Acquire) {
            return None; // fail fast: the node cannot answer
        }
        let op = OpId(self.next_op.fetch_add(1, Ordering::Relaxed));
        let (reply_tx, reply_rx) = bounded(1);
        self.cmd_tx
            .send(Cmd::Invoke {
                op,
                input,
                reply: reply_tx,
            })
            .ok()?;
        reply_rx.recv_timeout(timeout).ok()
    }

    /// Like [`invoke`](Self::invoke), also returning the operation's
    /// `[start, end]` interval in nanoseconds since the cluster epoch — the
    /// format `abd-lincheck` histories use.
    pub fn invoke_timed(&self, input: P::Op) -> (P::Resp, u64, u64) {
        let start = self.clock.now();
        let resp = self.invoke(input);
        let end = self.clock.now();
        (resp, start, end)
    }
}

/// The node thread: drives the protocol with messages, commands and timers.
fn node_main<P: Protocol>(
    mut node: P,
    net_rx: Receiver<(ProcessId, P::Msg)>,
    cmd_rx: Receiver<Cmd<P>>,
    net_txs: Vec<Sender<(ProcessId, P::Msg)>>,
    delay_tx: Option<Sender<(ProcessId, ProcessId, P::Msg)>>,
    clock: Arc<dyn Clock>,
) {
    let me = node.id();
    let mut waiting: HashMap<OpId, Sender<P::Resp>> = HashMap::new();
    // Timer wheel: key -> deadline in clock nanos. Small (a handful of
    // phases), so a map scan per iteration is fine.
    let mut timers: HashMap<TimerKey, Nanos> = HashMap::new();
    let mut crashed = false;

    let mut fx: Effects<P::Msg, P::Resp> = Effects::new();
    node.on_start(&mut fx);
    apply_effects(
        me,
        &mut node,
        fx,
        &net_txs,
        &delay_tx,
        &clock,
        &mut timers,
        &mut waiting,
    );

    loop {
        // Next timer deadline, if any. Waits are capped so the loop re-reads
        // the clock often enough even when it is a hand-advanced test clock.
        let next_deadline = timers.values().min().copied();
        let timeout = match next_deadline {
            Some(d) if !crashed => {
                Duration::from_nanos(d.saturating_sub(clock.now())).min(Duration::from_millis(50))
            }
            _ => Duration::from_millis(50),
        };

        crossbeam::channel::select! {
            recv(net_rx) -> msg => match msg {
                Ok((from, m)) if !crashed => {
                    let mut fx = Effects::new();
                    node.on_message(from, m, &mut fx);
                    apply_effects(me, &mut node, fx, &net_txs, &delay_tx, &clock, &mut timers, &mut waiting);
                }
                Ok(_) => {} // crashed: drop silently
                Err(_) => return,
            },
            recv(cmd_rx) -> cmd => match cmd {
                Ok(Cmd::Invoke { op, input, reply }) => {
                    if crashed {
                        continue; // client will time out
                    }
                    waiting.insert(op, reply);
                    let mut fx = Effects::new();
                    node.on_invoke(op, input, &mut fx);
                    apply_effects(me, &mut node, fx, &net_txs, &delay_tx, &clock, &mut timers, &mut waiting);
                }
                Ok(Cmd::Crash) => {
                    crashed = true;
                    timers.clear();
                    // Dropping the reply senders wakes blocked clients with
                    // a disconnect (-> fast `None`), instead of leaving
                    // them to wait out their timeouts.
                    waiting.clear();
                }
                Ok(Cmd::Restart) => {
                    if crashed {
                        crashed = false;
                        timers.clear();
                        let mut fx = Effects::new();
                        node.on_restart(&mut fx);
                        apply_effects(me, &mut node, fx, &net_txs, &delay_tx, &clock, &mut timers, &mut waiting);
                    }
                }
                Ok(Cmd::Shutdown) | Err(_) => return,
            },
            default(timeout) => {
                if crashed {
                    continue;
                }
                let now = clock.now();
                let due: Vec<TimerKey> =
                    timers.iter().filter(|(_, &d)| d <= now).map(|(&k, _)| k).collect();
                for key in due {
                    timers.remove(&key);
                    let mut fx = Effects::new();
                    node.on_timer(key, &mut fx);
                    apply_effects(me, &mut node, fx, &net_txs, &delay_tx, &clock, &mut timers, &mut waiting);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_effects<P: Protocol>(
    me: ProcessId,
    node: &mut P,
    fx: Effects<P::Msg, P::Resp>,
    net_txs: &[Sender<(ProcessId, P::Msg)>],
    delay_tx: &Option<Sender<(ProcessId, ProcessId, P::Msg)>>,
    clock: &Arc<dyn Clock>,
    timers: &mut HashMap<TimerKey, Nanos>,
    waiting: &mut HashMap<OpId, Sender<P::Resp>>,
) {
    // Effects can cascade (e.g. finishing an op starts the next queued
    // one), but protocols only emit effects from callbacks, so one level is
    // enough — sends never produce local follow-ups.
    let _ = node;
    for (to, msg) in fx.sends {
        if to == me {
            // Self-sends loop back through the node's own channel.
            let _ = net_txs[me.index()].send((me, msg));
            continue;
        }
        match delay_tx {
            Some(d) => {
                let _ = d.send((me, to, msg));
            }
            None => {
                let _ = net_txs[to.index()].send((me, msg));
            }
        }
    }
    for cmd in fx.timers {
        match cmd {
            TimerCmd::Set { key, after } => {
                timers.insert(key, clock.now() + after);
            }
            TimerCmd::Cancel { key } => {
                timers.remove(&key);
            }
        }
    }
    for (op, resp) in fx.responses {
        if let Some(reply) = waiting.remove(&op) {
            let _ = reply.send(resp);
        }
    }
}

/// One recorded operation: `(client, action, start, end)`.
pub type TimedEvent<A> = (usize, A, u64, u64);

/// A shared history recorder for multi-threaded linearizability tests on
/// the real runtime: threads append timed operations, the test extracts an
/// `abd-lincheck`-shaped record set.
#[derive(Clone, Debug, Default)]
pub struct HistoryRecorder<A> {
    events: Arc<Mutex<Vec<TimedEvent<A>>>>,
}

impl<A> HistoryRecorder<A> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder {
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Records one completed action by `client` spanning `[start, end]`.
    pub fn record(&self, client: usize, action: A, start: u64, end: u64) {
        self.events.lock().push((client, action, start, end));
    }

    /// Takes all recorded events.
    pub fn take(&self) -> Vec<TimedEvent<A>> {
        std::mem::take(&mut self.events.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abd_core::msg::{RegisterOp, RegisterResp};
    use abd_core::mwmr::{MwmrConfig, MwmrNode};
    use abd_core::swmr::{SwmrConfig, SwmrNode};

    fn mwmr_cluster(n: usize) -> Cluster<MwmrNode<u64>> {
        Cluster::spawn(
            (0..n)
                .map(|i| MwmrNode::new(MwmrConfig::new(n, ProcessId(i)), 0u64))
                .collect(),
            Jitter::None,
        )
    }

    #[test]
    fn write_read_round_trip() {
        let cluster = mwmr_cluster(3);
        let c = cluster.client(0);
        assert_eq!(c.invoke(RegisterOp::Write(5)), RegisterResp::WriteOk);
        let r = cluster.client(1);
        assert_eq!(r.invoke(RegisterOp::Read), RegisterResp::ReadOk(5));
    }

    #[test]
    fn concurrent_clients_all_complete() {
        let cluster = Arc::new(mwmr_cluster(5));
        let mut joins = Vec::new();
        for i in 0..5 {
            let c = cluster.client(i);
            joins.push(std::thread::spawn(move || {
                for k in 0..50u64 {
                    let v = (i as u64) << 32 | k;
                    assert_eq!(c.invoke(RegisterOp::Write(v)), RegisterResp::WriteOk);
                    assert!(matches!(
                        c.invoke(RegisterOp::Read),
                        RegisterResp::ReadOk(_)
                    ));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn survives_minority_crash() {
        let cluster = mwmr_cluster(5);
        cluster.crash(3);
        cluster.crash(4);
        let c = cluster.client(0);
        assert_eq!(c.invoke(RegisterOp::Write(1)), RegisterResp::WriteOk);
        assert_eq!(
            cluster.client(2).invoke(RegisterOp::Read),
            RegisterResp::ReadOk(1)
        );
    }

    #[test]
    fn blocks_under_majority_crash_until_timeout() {
        let cluster = mwmr_cluster(3);
        cluster.crash(1);
        cluster.crash(2);
        let c = cluster.client(0);
        let r = c.try_invoke_for(RegisterOp::Write(1), Duration::from_millis(200));
        assert_eq!(r, None, "no quorum: operation must time out");
    }

    #[test]
    fn crashed_node_ignores_invocations() {
        let cluster = mwmr_cluster(3);
        cluster.crash(0);
        let c = cluster.client(0);
        assert_eq!(
            c.try_invoke_for(RegisterOp::Read, Duration::from_millis(200)),
            None
        );
        // The rest of the cluster is still functional.
        assert_eq!(
            cluster.client(1).invoke(RegisterOp::Read),
            RegisterResp::ReadOk(0)
        );
    }

    #[test]
    fn crashed_node_fails_fast_not_after_timeout() {
        let cluster = mwmr_cluster(3);
        let c0 = cluster.client(0);
        assert_eq!(c0.invoke(RegisterOp::Write(7)), RegisterResp::WriteOk);
        cluster.crash(1);
        assert!(cluster.is_crashed(1));
        let clock = Arc::clone(cluster.clock());
        let t0 = clock.now();
        // A generous timeout that must NOT be consumed: the crash flag
        // short-circuits the invocation.
        let r = cluster
            .client(1)
            .try_invoke_for(RegisterOp::Read, Duration::from_secs(60));
        assert_eq!(r, None);
        assert!(
            clock.now() - t0 < 5_000_000_000,
            "fail-fast regression: crashed node consumed its timeout"
        );
    }

    #[test]
    fn crash_wakes_inflight_clients_quickly() {
        // Majority down: node 0's write can never finish. Crashing node 0
        // itself must then wake the blocked client immediately (dropped
        // reply channel), not strand it until the timeout.
        let cluster = mwmr_cluster(3);
        cluster.crash(1);
        cluster.crash(2);
        let c0 = cluster.client(0);
        let clock = Arc::clone(cluster.clock());
        let t0 = clock.now();
        let h = std::thread::spawn(move || {
            c0.try_invoke_for(RegisterOp::Write(9), Duration::from_secs(60))
        });
        std::thread::sleep(Duration::from_millis(50));
        cluster.crash(0);
        assert_eq!(h.join().unwrap(), None);
        assert!(
            clock.now() - t0 < 10_000_000_000,
            "in-flight invocation must abort with the crash"
        );
    }

    #[test]
    fn restart_rejoins_with_caught_up_state() {
        let cluster = mwmr_cluster(3);
        assert_eq!(
            cluster.client(0).invoke(RegisterOp::Write(5)),
            RegisterResp::WriteOk
        );
        cluster.crash(1);
        assert_eq!(
            cluster
                .client(1)
                .try_invoke_for(RegisterOp::Read, Duration::from_millis(100)),
            None
        );
        // More writes while node 1 is down.
        assert_eq!(
            cluster.client(0).invoke(RegisterOp::Write(6)),
            RegisterResp::WriteOk
        );
        cluster.restart(1);
        assert!(!cluster.is_crashed(1));
        // The rejoined node catches up via its query phase (invocations
        // queue behind recovery), then serves.
        assert_eq!(
            cluster.client(1).invoke(RegisterOp::Read),
            RegisterResp::ReadOk(6)
        );
        // Restarting a live node is a no-op.
        cluster.restart(1);
        assert_eq!(
            cluster.client(1).invoke(RegisterOp::Read),
            RegisterResp::ReadOk(6)
        );
    }

    #[test]
    fn jitter_delays_but_delivers() {
        let cluster: Cluster<MwmrNode<u64>> = Cluster::spawn(
            (0..3)
                .map(|i| MwmrNode::new(MwmrConfig::new(3, ProcessId(i)), 0u64))
                .collect(),
            Jitter::Uniform {
                lo: 100_000,
                hi: 2_000_000,
            },
        );
        let c = cluster.client(0);
        let (resp, start, end) = c.invoke_timed(RegisterOp::Write(3));
        assert_eq!(resp, RegisterResp::WriteOk);
        assert!(end - start >= 200_000, "two message hops of >= 100µs each");
        assert_eq!(
            cluster.client(1).invoke(RegisterOp::Read),
            RegisterResp::ReadOk(3)
        );
    }

    #[test]
    fn swmr_on_runtime_rejects_non_writer() {
        let cluster: Cluster<SwmrNode<u64>> = Cluster::spawn(
            (0..3)
                .map(|i| SwmrNode::new(SwmrConfig::new(3, ProcessId(i), ProcessId(0)), 0u64))
                .collect(),
            Jitter::None,
        );
        let c1 = cluster.client(1);
        assert!(matches!(
            c1.invoke(RegisterOp::Write(9)),
            RegisterResp::Err(_)
        ));
        let c0 = cluster.client(0);
        assert_eq!(c0.invoke(RegisterOp::Write(9)), RegisterResp::WriteOk);
    }

    #[test]
    fn retransmission_timers_fire_on_runtime() {
        // Nodes with retransmission; no loss on channels, so this just
        // exercises the timer path end to end.
        let cluster: Cluster<MwmrNode<u64>> = Cluster::spawn(
            (0..3)
                .map(|i| {
                    MwmrNode::new(
                        MwmrConfig::new(3, ProcessId(i)).with_retransmit(1_000_000),
                        0u64,
                    )
                })
                .collect(),
            Jitter::Uniform {
                lo: 10_000,
                hi: 3_000_000,
            },
        );
        let c = cluster.client(2);
        for k in 0..10 {
            assert_eq!(c.invoke(RegisterOp::Write(k)), RegisterResp::WriteOk);
        }
    }

    #[test]
    fn history_recorder_collects_across_threads() {
        let rec: HistoryRecorder<&'static str> = HistoryRecorder::new();
        let mut joins = Vec::new();
        for i in 0..4 {
            let r = rec.clone();
            joins.push(std::thread::spawn(move || {
                r.record(i, "op", i as u64, i as u64 + 1);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(rec.take().len(), 4);
        assert_eq!(rec.take().len(), 0);
    }
}
