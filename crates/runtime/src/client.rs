//! Typed blocking clients for the replicated key-value store, and the
//! adapter that turns the store into the shared-memory register array the
//! `abd-shmem` algorithms run on.

use crate::cluster::{Client, Cluster, Jitter};
use abd_core::types::ProcessId;
use abd_kv::{KvConfig, KvNode, KvOp, KvResp};
use abd_shmem::array::RegisterArray;
use std::fmt::Debug;
use std::hash::Hash;
use std::time::Duration;

/// Spawns an `n`-node replicated key-value cluster on OS threads.
///
/// # Examples
///
/// ```
/// use abd_runtime::client::{spawn_kv_cluster, KvStoreClient};
/// use abd_runtime::cluster::Jitter;
///
/// let cluster = spawn_kv_cluster::<String, u64>(3, Jitter::None);
/// let kv = KvStoreClient::new(cluster.client(0));
/// kv.put("answer".to_string(), 42);
/// assert_eq!(kv.get("answer".to_string()), Some(42));
/// ```
pub fn spawn_kv_cluster<K, V>(n: usize, jitter: Jitter) -> Cluster<KvNode<K, V>>
where
    K: Clone + Eq + Hash + Debug + Send + 'static,
    V: Clone + Debug + Send + 'static,
{
    Cluster::spawn(
        (0..n)
            .map(|i| KvNode::new(KvConfig::new(n, ProcessId(i))))
            .collect(),
        jitter,
    )
}

/// A typed, blocking client for one node of a key-value cluster.
#[derive(Clone, Debug)]
pub struct KvStoreClient<K, V>
where
    K: Clone + Eq + Hash + Debug + Send + 'static,
    V: Clone + Debug + Send + 'static,
{
    inner: Client<KvNode<K, V>>,
}

impl<K, V> KvStoreClient<K, V>
where
    K: Clone + Eq + Hash + Debug + Send + 'static,
    V: Clone + Debug + Send + 'static,
{
    /// Wraps a raw cluster client.
    pub fn new(inner: Client<KvNode<K, V>>) -> Self {
        KvStoreClient { inner }
    }

    /// The node this client talks to.
    pub fn node(&self) -> ProcessId {
        self.inner.node()
    }

    /// Linearizable read of `key`.
    ///
    /// # Panics
    ///
    /// Panics if the operation cannot complete (no quorum for 60s).
    pub fn get(&self, key: K) -> Option<V> {
        match self.inner.invoke(KvOp::Get(key)) {
            KvResp::GetOk(v) => v,
            other => unreachable!("get returned {other:?}"),
        }
    }

    /// Linearizable write of `value` under `key`.
    ///
    /// # Panics
    ///
    /// Panics if the operation cannot complete (no quorum for 60s).
    pub fn put(&self, key: K, value: V) {
        match self.inner.invoke(KvOp::Put(key, value)) {
            KvResp::PutOk => {}
            other => unreachable!("put returned {other:?}"),
        }
    }

    /// `get` with a timeout; `None` result on timeout is indistinguishable
    /// from an absent key, so this is for liveness probes, not reads.
    pub fn try_get_for(&self, key: K, timeout: Duration) -> Option<Option<V>> {
        match self.inner.try_invoke_for(KvOp::Get(key), timeout) {
            Some(KvResp::GetOk(v)) => Some(v),
            Some(other) => unreachable!("get returned {other:?}"),
            None => None,
        }
    }

    /// `put` with a timeout. Returns `false` on timeout (the put may still
    /// take effect later).
    pub fn try_put_for(&self, key: K, value: V, timeout: Duration) -> bool {
        matches!(
            self.inner.try_invoke_for(KvOp::Put(key, value), timeout),
            Some(KvResp::PutOk)
        )
    }

    /// The underlying untyped client.
    pub fn raw(&self) -> &Client<KvNode<K, V>> {
        &self.inner
    }
}

/// The bridge that makes the paper's thesis executable: an
/// [`abd_shmem::array::RegisterArray`] whose registers are keys of the
/// replicated store — so every `abd-shmem` algorithm transparently runs on
/// an asynchronous, crash-prone message-passing system.
///
/// Register `i` is key `i as u64`. A register that was never written reads
/// as the `initial` value supplied at construction.
#[derive(Clone, Debug)]
pub struct KvRegisterArray<V>
where
    V: Clone + Debug + Send + 'static,
{
    client: KvStoreClient<u64, V>,
    len: usize,
    initial: V,
}

impl<V> KvRegisterArray<V>
where
    V: Clone + Debug + Send + 'static,
{
    /// Views keys `0..len` of the store as registers initialized to
    /// `initial`.
    pub fn new(client: KvStoreClient<u64, V>, len: usize, initial: V) -> Self {
        KvRegisterArray {
            client,
            len,
            initial,
        }
    }
}

impl<V> RegisterArray<V> for KvRegisterArray<V>
where
    V: Clone + Debug + Send + 'static,
{
    fn len(&self) -> usize {
        self.len
    }

    fn read(&mut self, i: usize) -> V {
        assert!(i < self.len, "register index {i} out of range");
        self.client
            .get(i as u64)
            .unwrap_or_else(|| self.initial.clone())
    }

    fn write(&mut self, i: usize, v: V) {
        assert!(i < self.len, "register index {i} out of range");
        self.client.put(i as u64, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abd_shmem::counter::Counter;
    use abd_shmem::maxreg::MaxRegister;
    use abd_shmem::snapshot::{Segment, SnapshotObject};

    #[test]
    fn kv_client_round_trip() {
        let cluster = spawn_kv_cluster::<String, String>(3, Jitter::None);
        let kv = KvStoreClient::new(cluster.client(1));
        assert_eq!(kv.get("missing".into()), None);
        kv.put("k".into(), "v".into());
        assert_eq!(kv.get("k".into()), Some("v".into()));
        // A different node sees the same data.
        let kv2 = KvStoreClient::new(cluster.client(2));
        assert_eq!(kv2.get("k".into()), Some("v".into()));
    }

    #[test]
    fn shmem_counter_over_message_passing() {
        // THE demo: a shared-memory counter, unchanged, running on a
        // 3-replica message-passing cluster.
        let cluster = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
        let n_procs = 3;
        let mut joins = Vec::new();
        for p in 0..n_procs {
            let arr = KvRegisterArray::new(KvStoreClient::new(cluster.client(p)), n_procs, 0u64);
            joins.push(std::thread::spawn(move || {
                let mut c = Counter::new(p, arr);
                for _ in 0..10 {
                    c.increment();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let arr = KvRegisterArray::new(KvStoreClient::new(cluster.client(0)), n_procs, 0u64);
        let mut c = Counter::new(0, arr);
        assert_eq!(c.value(), 30);
    }

    #[test]
    fn shmem_snapshot_over_message_passing_with_crash() {
        let cluster = spawn_kv_cluster::<u64, Segment<u64>>(5, Jitter::None);
        // A minority crash must not affect the algorithm at all.
        cluster.crash(4);
        let n_procs = 2;
        let mk = |node: usize| {
            KvRegisterArray::new(
                KvStoreClient::new(cluster.client(node)),
                n_procs,
                Segment::initial(n_procs, 0u64),
            )
        };
        let mut p0 = SnapshotObject::new(0, mk(0));
        let mut p1 = SnapshotObject::new(1, mk(1));
        p0.update(11);
        p1.update(22);
        assert_eq!(p0.scan(), vec![11, 22]);
        p0.update(33);
        assert_eq!(p1.scan(), vec![33, 22]);
    }

    #[test]
    fn shmem_maxreg_over_message_passing() {
        let cluster = spawn_kv_cluster::<u64, u64>(3, Jitter::None);
        let mk =
            |node: usize| KvRegisterArray::new(KvStoreClient::new(cluster.client(node)), 3, 0u64);
        let mut a = MaxRegister::new(0, mk(0));
        let mut b = MaxRegister::new(1, mk(1));
        a.write_max(100);
        b.write_max(50);
        assert_eq!(b.read(), 100);
    }

    #[test]
    fn timeout_probe_on_healthy_cluster() {
        let cluster = spawn_kv_cluster::<String, u64>(3, Jitter::None);
        let kv = KvStoreClient::new(cluster.client(0));
        assert!(kv.try_put_for("k".into(), 1, Duration::from_secs(5)));
        assert_eq!(
            kv.try_get_for("k".into(), Duration::from_secs(5)),
            Some(Some(1))
        );
    }
}
