//! # abd-runtime — the protocols on real threads
//!
//! `abd-simnet` proves the protocols correct under a deterministic
//! adversary; this crate runs **the same sans-io state machines** on real
//! OS threads over crossbeam channels, which is what the wall-clock
//! criterion benchmarks measure and what the examples demo:
//!
//! * [`cluster`] — thread-per-node hosting of any
//!   [`Protocol`](abd_core::context::Protocol): channel fabric, timer
//!   wheels, blocking clients, crash injection, optional random latency
//!   ([`cluster::Jitter`]);
//! * [`client`] — typed clients for the replicated key-value store and
//!   [`client::KvRegisterArray`], the adapter that lets every `abd-shmem`
//!   algorithm run over the ABD emulation unchanged;
//! * [`delay`] — the latency-injection thread;
//! * [`clock`] — the wall-clock [`Clock`](abd_core::clock::Clock)
//!   implementation, the single `Instant` site the `abd-lint` `wall-clock`
//!   rule permits.
//!
//! ```
//! use abd_runtime::client::{spawn_kv_cluster, KvStoreClient};
//! use abd_runtime::cluster::Jitter;
//!
//! let cluster = spawn_kv_cluster::<String, u64>(3, Jitter::None);
//! cluster.crash(2); // a minority crash is harmless
//! let kv = KvStoreClient::new(cluster.client(0));
//! kv.put("x".to_string(), 1);
//! assert_eq!(kv.get("x".to_string()), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod clock;
pub mod cluster;
pub mod delay;

pub use client::{spawn_kv_cluster, KvRegisterArray, KvStoreClient};
pub use clock::MonotonicClock;
pub use cluster::{Client, Cluster, HistoryRecorder, Jitter};
