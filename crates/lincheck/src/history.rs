//! Operation histories of read/write registers.
//!
//! A *history* records, for each completed client operation, its kind
//! (write of a value, or read returning a value) and the real-time interval
//! `[start, end]` between invocation and response. Whether such a history is
//! **atomic** (linearizable against the sequential register) is exactly the
//! correctness property the paper's emulation guarantees — so the checkers
//! in this crate are how the reproduction *measures* correctness instead of
//! assuming it.
//!
//! Crashed clients leave *pending* writes: invoked operations that never
//! responded. A pending write may or may not have taken effect, so the
//! checker treats it as optional (it may be linearized anywhere after its
//! invocation, or dropped entirely).

use std::fmt;

/// One completed operation as it appears in a history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegAction<V> {
    /// A write of `V` that completed.
    Write(V),
    /// A read that returned `V`.
    Read(V),
}

/// A completed operation with its real-time interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompletedOp<V> {
    /// The client (process) that issued the operation.
    pub client: usize,
    /// What the operation did.
    pub action: RegAction<V>,
    /// Invocation time.
    pub start: u64,
    /// Response time (`>= start`).
    pub end: u64,
}

/// A register history: completed operations plus optional pending writes.
///
/// # Examples
///
/// ```
/// use abd_lincheck::history::{History, RegAction};
///
/// let mut h = History::new(0u32);
/// h.push(0, RegAction::Write(1), 0, 10);
/// h.push(1, RegAction::Read(1), 20, 30);
/// assert_eq!(h.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct History<V> {
    initial: V,
    ops: Vec<CompletedOp<V>>,
    /// Writes that were invoked but never completed (client crashed or the
    /// run was cut off); each may or may not have taken effect.
    pending_writes: Vec<(usize, V, u64)>,
}

impl<V> History<V> {
    /// Creates an empty history over a register whose initial value is
    /// `initial`.
    pub fn new(initial: V) -> Self {
        History {
            initial,
            ops: Vec::new(),
            pending_writes: Vec::new(),
        }
    }

    /// The register's initial value.
    pub fn initial(&self) -> &V {
        &self.initial
    }

    /// Appends a completed operation.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn push(&mut self, client: usize, action: RegAction<V>, start: u64, end: u64) {
        assert!(end >= start, "operation ends before it starts");
        self.ops.push(CompletedOp {
            client,
            action,
            start,
            end,
        });
    }

    /// Records a write that was invoked at `start` but never completed.
    pub fn push_pending_write(&mut self, client: usize, value: V, start: u64) {
        self.pending_writes.push((client, value, start));
    }

    /// The completed operations, in insertion order.
    pub fn ops(&self) -> &[CompletedOp<V>] {
        &self.ops
    }

    /// The pending writes `(client, value, start)`.
    pub fn pending_writes(&self) -> &[(usize, V, u64)] {
        &self.pending_writes
    }

    /// Number of completed operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history has no completed operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over completed operations.
    pub fn iter(&self) -> std::slice::Iter<'_, CompletedOp<V>> {
        self.ops.iter()
    }

    /// Checks basic well-formedness: per-client operations do not overlap
    /// (each client is a sequential thread of control).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate_sequential_clients(&self) -> Result<(), String> {
        let mut by_client: std::collections::BTreeMap<usize, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for op in &self.ops {
            by_client
                .entry(op.client)
                .or_default()
                .push((op.start, op.end));
        }
        for (client, mut ivs) in by_client {
            ivs.sort_unstable();
            for w in ivs.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!(
                        "client {client} has overlapping operations [{}, {}] and [{}, {}]",
                        w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                }
            }
        }
        Ok(())
    }
}

impl<'a, V> IntoIterator for &'a History<V> {
    type Item = &'a CompletedOp<V>;
    type IntoIter = std::slice::Iter<'a, CompletedOp<V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl<V: fmt::Display> fmt::Display for History<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "history (initial = {}):", self.initial)?;
        for op in &self.ops {
            let (kind, v) = match &op.action {
                RegAction::Write(v) => ("W", v),
                RegAction::Read(v) => ("R", v),
            };
            writeln!(
                f,
                "  c{} {}({v}) [{}, {}]",
                op.client, kind, op.start, op.end
            )?;
        }
        for (c, v, s) in &self.pending_writes {
            writeln!(f, "  c{c} W({v}) [{s}, ∞) (pending)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let mut h = History::new(0);
        h.push(0, RegAction::Write(1), 0, 5);
        h.push(1, RegAction::Read(1), 6, 9);
        h.push_pending_write(2, 3, 7);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.pending_writes(), &[(2, 3, 7)]);
        assert_eq!(h.iter().count(), 2);
        assert_eq!((&h).into_iter().count(), 2);
        assert_eq!(*h.initial(), 0);
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn rejects_backwards_interval() {
        let mut h = History::new(0);
        h.push(0, RegAction::Write(1), 10, 5);
    }

    #[test]
    fn sequential_client_validation() {
        let mut h = History::new(0);
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(0, RegAction::Read(1), 10, 20); // touching is allowed
        assert!(h.validate_sequential_clients().is_ok());
        h.push(0, RegAction::Read(1), 15, 25); // overlaps previous
        assert!(h.validate_sequential_clients().is_err());
    }

    #[test]
    fn display_renders_all_ops() {
        let mut h = History::new(0);
        h.push(0, RegAction::Write(1), 0, 5);
        h.push_pending_write(1, 2, 3);
        let s = h.to_string();
        assert!(s.contains("W(1)"));
        assert!(s.contains("pending"));
    }
}
