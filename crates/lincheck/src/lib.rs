//! # abd-lincheck — consistency checkers for register histories
//!
//! The ABD paper's claims are *correctness* claims: the emulated register is
//! **atomic** (linearizable), while cheaper constructions are merely
//! *regular* or *safe*. This crate turns those claims into measurements:
//!
//! * [`history`] — recording operation intervals from any execution
//!   (simulated or real);
//! * [`wg`] — a memoized Wing–Gong search deciding linearizability for
//!   arbitrary register histories (multi-writer, pending operations);
//! * [`sc`] — an exact memoized search deciding *sequential consistency*
//!   (program order only, no cross-client real-time constraint), the tier
//!   SC-ABD reads promise;
//! * [`regularity`] — linear-time detectors for single-writer unique-value
//!   histories: regularity/safeness violations and the *new/old inversion*
//!   anomaly that separates regular from atomic registers;
//! * [`oracle`] — those checkers reified as pluggable pass/fail predicates
//!   ([`HistoryOracle`]) so harnesses like the `abd-simnet` campaign
//!   shrinker can re-apply one failure definition to many replays. One
//!   oracle per consistency tier: atomic, sequential, regular.
//!
//! ## Example
//!
//! ```
//! use abd_lincheck::history::{History, RegAction};
//! use abd_lincheck::wg::{check_linearizable, CheckResult};
//!
//! let mut h = History::new(0u32);
//! h.push(0, RegAction::Write(1), 0, 10);
//! h.push(1, RegAction::Read(1), 20, 30);
//! assert_eq!(check_linearizable(&h), CheckResult::Linearizable);
//!
//! // A stale read after a completed write is not atomic:
//! h.push(2, RegAction::Read(0), 40, 50);
//! assert_eq!(check_linearizable(&h), CheckResult::NotLinearizable);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod history;
pub mod oracle;
pub mod regularity;
pub mod sc;
pub mod wg;

pub use history::{CompletedOp, History, RegAction};
pub use oracle::{
    AtomicSwmrOracle, HistoryOracle, LinearizableOracle, RegularOracle, SequentialConsistencyOracle,
};
pub use regularity::{check_regular_swmr, find_new_old_inversions, is_atomic_swmr, Anomaly};
pub use sc::{check_sequential, check_sequential_with_limit, ScCheckResult};
pub use wg::{check_linearizable, check_linearizable_with_limit, CheckResult};
