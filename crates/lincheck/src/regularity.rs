//! Fast detectors for the weaker register semantics in Lamport's hierarchy:
//! **safe** and **regular** registers, plus the *new/old inversion* anomaly
//! separating regular from atomic.
//!
//! These checkers are specialized to **single-writer histories with unique
//! write values** (every write writes a distinct value — how all the
//! experiment workloads are generated) and run in `O(ops²)` worst case,
//! cheap enough to scan tens of thousands of adversarial schedules where
//! the full Wing–Gong search would be overkill (experiment **T5**).
//!
//! Definitions used (single writer, so writes are totally ordered by their
//! non-overlapping intervals):
//!
//! * a read is **safe-legal** when, if it overlaps no write, it returns the
//!   latest write completed before it started (reads overlapping writes may
//!   return anything that was ever written — we still flag values that were
//!   never written at all);
//! * a read is **regular-legal** when it returns either a write it overlaps
//!   or the latest write preceding it — equivalently, a value that is not
//!   yet overwritten when the read starts and whose write has begun before
//!   the read ends;
//! * a **new/old inversion** is a pair of non-overlapping reads where the
//!   earlier read returns a newer write than the later one — permitted by
//!   regularity, forbidden by atomicity; it is exactly the anomaly the
//!   paper's write-back eliminates.
//!
//! **Pending writes** ([`History::pending_writes`] — e.g. a writer crashed
//! mid-flight under a nemesis campaign) are indexed as open-ended write
//! intervals: their value may legally be observed by any read that starts
//! after they do, and never counts as overwriting anything. Anomaly
//! indices `>= h.ops().len()` refer to pending writes, in order.

use crate::history::{CompletedOp, History, RegAction};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// An anomaly found by the fast checkers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Anomaly {
    /// A read returned a value that no write (and not the initial value)
    /// ever produced. Index into `History::ops`.
    PhantomValue {
        /// Index of the offending read in the history.
        read: usize,
    },
    /// A read returned a value that was already overwritten before the read
    /// started (violates regularity, hence also atomicity).
    StaleRead {
        /// Index of the offending read.
        read: usize,
        /// Index of the write whose value was returned (`None` = initial value).
        returned_write: Option<usize>,
        /// Index of a newer write that completed before the read started.
        overwritten_by: usize,
    },
    /// A read returned a value whose write had not started when the read
    /// ended (violates even safeness).
    FutureRead {
        /// Index of the offending read.
        read: usize,
        /// Index of the write whose value was returned.
        returned_write: usize,
    },
    /// Two non-overlapping reads observed writes in the wrong order
    /// (regular but not atomic).
    NewOldInversion {
        /// The earlier read (saw the newer write).
        first_read: usize,
        /// The later read (saw the older write).
        second_read: usize,
    },
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::PhantomValue { read } => {
                write!(f, "read #{read} returned a never-written value")
            }
            Anomaly::StaleRead {
                read,
                overwritten_by,
                ..
            } => {
                write!(f, "read #{read} returned a value overwritten by write #{overwritten_by} before it started")
            }
            Anomaly::FutureRead {
                read,
                returned_write,
            } => {
                write!(f, "read #{read} returned the value of write #{returned_write} which had not yet started")
            }
            Anomaly::NewOldInversion {
                first_read,
                second_read,
            } => {
                write!(f, "new/old inversion: read #{first_read} saw a newer write than later read #{second_read}")
            }
        }
    }
}

/// Pre-indexed single-writer history.
/// One interval in the indexed history: a completed operation, or a
/// pending write (a write whose client crashed mid-flight) widened to an
/// open-ended interval — the write may or may not have taken effect, and
/// either outcome must be judged legal.
struct Interval<'a, V> {
    client: usize,
    value: &'a V,
    is_read: bool,
    start: u64,
    /// `u64::MAX` for pending writes: they never completed, so nothing is
    /// ever ordered after them.
    end: u64,
}

struct Indexed<'a, V> {
    /// Completed operations first (same indices as `History::ops`), then
    /// one open-ended entry per pending write.
    ops: Vec<Interval<'a, V>>,
    /// Indices of writes, sorted by start time (the writer is sequential,
    /// so start order is version order — including crash-aborted writes).
    writes: Vec<usize>,
    /// Map value → position in `writes` (version number, 1-based; 0 is the
    /// initial value).
    version_of: HashMap<&'a V, usize>,
}

/// Real-time (plus program-order) precedence between operations, matching
/// the convention of the Wing–Gong checker: distinct clients are ordered
/// only by strict interval separation; same-client operations are also
/// ordered when their intervals merely touch.
fn precedes<V>(a: &Interval<'_, V>, b: &Interval<'_, V>) -> bool {
    a.end < b.start || (a.client == b.client && a.end <= b.start && a.start < b.start)
}

fn index_history<V: Eq + Hash>(h: &History<V>) -> Indexed<'_, V> {
    let mut ops: Vec<Interval<'_, V>> = h
        .ops()
        .iter()
        .map(|op: &CompletedOp<V>| {
            let (value, is_read) = match &op.action {
                RegAction::Read(v) => (v, true),
                RegAction::Write(v) => (v, false),
            };
            Interval {
                client: op.client,
                value,
                is_read,
                start: op.start,
                end: op.end,
            }
        })
        .collect();
    for (client, value, start) in h.pending_writes() {
        ops.push(Interval {
            client: *client,
            value,
            is_read: false,
            start: *start,
            end: u64::MAX,
        });
    }
    let mut writes: Vec<usize> = (0..ops.len()).filter(|&i| !ops[i].is_read).collect();
    writes.sort_by_key(|&i| ops[i].start);
    let mut version_of = HashMap::new();
    version_of.insert(h.initial(), 0);
    for (rank, &w) in writes.iter().enumerate() {
        version_of.insert(ops[w].value, rank + 1);
    }
    Indexed {
        ops,
        writes,
        version_of,
    }
}

/// Scans a single-writer unique-value history for **regularity** violations
/// (which subsume safeness violations). Returns every anomaly found, in
/// read order; an empty vector means the history is regular.
pub fn check_regular_swmr<V: Eq + Hash>(h: &History<V>) -> Vec<Anomaly> {
    let ix = index_history(h);
    let mut anomalies = Vec::new();
    for (i, op) in ix.ops.iter().enumerate() {
        if !op.is_read {
            continue;
        }
        let Some(&version) = ix.version_of.get(op.value) else {
            anomalies.push(Anomaly::PhantomValue { read: i });
            continue;
        };
        let returned_write = version.checked_sub(1).map(|r| ix.writes[r]);
        // Future read: the write of the returned value started after the
        // read ended.
        if let Some(w) = returned_write {
            if ix.ops[w].start > op.end {
                anomalies.push(Anomaly::FutureRead {
                    read: i,
                    returned_write: w,
                });
                continue;
            }
        }
        // Stale read: some strictly newer write completed before the read
        // started.
        let overwritten = ix.writes[version..] // writes with rank > version-1, i.e. newer
            .iter()
            .find(|&&w| precedes(&ix.ops[w], op));
        if let Some(&w) = overwritten {
            anomalies.push(Anomaly::StaleRead {
                read: i,
                returned_write,
                overwritten_by: w,
            });
        }
    }
    anomalies
}

/// Scans for **new/old inversions** between non-overlapping reads: the
/// earlier read observes a strictly newer version than the later read.
/// Phantom reads are skipped (report them via [`check_regular_swmr`]).
pub fn find_new_old_inversions<V: Eq + Hash>(h: &History<V>) -> Vec<Anomaly> {
    let ix = index_history(h);
    let reads: Vec<(usize, usize)> = ix
        .ops
        .iter()
        .enumerate()
        .filter(|(_, op)| op.is_read)
        .filter_map(|(i, op)| ix.version_of.get(op.value).map(|&ver| (i, ver)))
        .collect();
    let mut anomalies = Vec::new();
    for (a, (i, ver_i)) in reads.iter().enumerate() {
        for (j, ver_j) in reads[a + 1..].iter().chain(reads[..a].iter()) {
            if precedes(&ix.ops[*i], &ix.ops[*j]) && ver_i > ver_j {
                anomalies.push(Anomaly::NewOldInversion {
                    first_read: *i,
                    second_read: *j,
                });
            }
        }
    }
    anomalies
}

/// Convenience: `true` when the history is regular **and** free of new/old
/// inversions. For single-writer unique-value histories this coincides with
/// atomicity (Lamport), so it cross-validates the Wing–Gong checker.
pub fn is_atomic_swmr<V: Eq + Hash>(h: &History<V>) -> bool {
    check_regular_swmr(h).is_empty() && find_new_old_inversions(h).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RegAction::{Read, Write};

    fn h() -> History<u32> {
        History::new(0)
    }

    #[test]
    fn clean_sequential_history_has_no_anomalies() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 10);
        hist.push(1, Read(1), 20, 30);
        hist.push(0, Write(2), 40, 50);
        hist.push(1, Read(2), 60, 70);
        assert!(check_regular_swmr(&hist).is_empty());
        assert!(find_new_old_inversions(&hist).is_empty());
        assert!(is_atomic_swmr(&hist));
    }

    #[test]
    fn pending_write_may_be_observed_but_not_foreseen() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 10);
        hist.push_pending_write(0, 2, 20); // writer crashed mid-write
        hist.push(1, Read(2), 30, 40); // in-flight value observed — legal
        hist.push(2, Read(2), 50, 60);
        assert!(is_atomic_swmr(&hist));
        // A read that ended before the pending write began cannot see it.
        hist.push(3, Read(2), 5, 12);
        assert!(
            matches!(check_regular_swmr(&hist)[0], Anomaly::FutureRead { .. }),
            "{:?}",
            check_regular_swmr(&hist)
        );
        // And observing it then reverting to the old value is the classic
        // new/old inversion, pending or not.
        let mut hist2 = h();
        hist2.push(0, Write(1), 0, 10);
        hist2.push_pending_write(0, 2, 20);
        hist2.push(1, Read(2), 30, 40);
        hist2.push(2, Read(1), 50, 60);
        assert!(check_regular_swmr(&hist2).is_empty());
        assert!(!find_new_old_inversions(&hist2).is_empty());
        assert!(!is_atomic_swmr(&hist2));
    }

    #[test]
    fn phantom_value_detected() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 10);
        hist.push(1, Read(99), 20, 30);
        let a = check_regular_swmr(&hist);
        assert_eq!(a, vec![Anomaly::PhantomValue { read: 1 }]);
    }

    #[test]
    fn stale_read_detected() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 10);
        hist.push(0, Write(2), 20, 30);
        hist.push(1, Read(1), 40, 50); // 2 completed at 30 — stale
        let a = check_regular_swmr(&hist);
        assert!(
            matches!(
                a[0],
                Anomaly::StaleRead {
                    read: 2,
                    overwritten_by: 1,
                    ..
                }
            ),
            "{a:?}"
        );
        assert!(!is_atomic_swmr(&hist));
    }

    #[test]
    fn stale_read_of_initial_value_detected() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 10);
        hist.push(1, Read(0), 20, 30);
        let a = check_regular_swmr(&hist);
        assert!(
            matches!(
                a[0],
                Anomaly::StaleRead {
                    read: 1,
                    returned_write: None,
                    overwritten_by: 0
                }
            ),
            "{a:?}"
        );
    }

    #[test]
    fn concurrent_read_may_return_either() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 100);
        hist.push(1, Read(0), 40, 50);
        hist.push(2, Read(1), 40, 50);
        assert!(check_regular_swmr(&hist).is_empty());
    }

    #[test]
    fn future_read_detected() {
        let mut hist = h();
        hist.push(1, Read(1), 0, 10); // write of 1 starts later
        hist.push(0, Write(1), 20, 30);
        let a = check_regular_swmr(&hist);
        assert_eq!(
            a,
            vec![Anomaly::FutureRead {
                read: 0,
                returned_write: 1
            }]
        );
    }

    #[test]
    fn new_old_inversion_detected() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 100);
        hist.push(1, Read(1), 10, 20); // new
        hist.push(2, Read(0), 30, 40); // old, after the first read — inversion
        let inv = find_new_old_inversions(&hist);
        assert_eq!(
            inv,
            vec![Anomaly::NewOldInversion {
                first_read: 1,
                second_read: 2
            }]
        );
        // Regular (each read individually legal) but not atomic.
        assert!(check_regular_swmr(&hist).is_empty());
        assert!(!is_atomic_swmr(&hist));
    }

    #[test]
    fn overlapping_reads_cannot_invert() {
        let mut hist = h();
        hist.push(0, Write(1), 0, 100);
        hist.push(1, Read(1), 10, 50);
        hist.push(2, Read(0), 30, 70); // overlaps the first read
        assert!(find_new_old_inversions(&hist).is_empty());
    }

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            Anomaly::PhantomValue { read: 3 }.to_string(),
            Anomaly::StaleRead {
                read: 1,
                returned_write: None,
                overwritten_by: 0,
            }
            .to_string(),
            Anomaly::FutureRead {
                read: 2,
                returned_write: 5,
            }
            .to_string(),
            Anomaly::NewOldInversion {
                first_read: 1,
                second_read: 2,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("never-written"));
        assert!(msgs[1].contains("overwritten"));
        assert!(msgs[2].contains("not yet started"));
        assert!(msgs[3].contains("inversion"));
    }

    #[test]
    fn agrees_with_wing_gong_on_small_histories() {
        use crate::wg::{check_linearizable, CheckResult};
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(12345);
        let mut agreements = 0;
        for _ in 0..300 {
            // Random single-writer history: writer writes 1..=w sequentially,
            // readers read random versions at random intervals.
            let mut hist: History<u32> = History::new(0);
            let writes = rng.gen_range(1..4u32);
            let mut t = 0u64;
            let mut write_spans = Vec::new();
            for v in 1..=writes {
                let s = t + rng.gen_range(0..5);
                let e = s + rng.gen_range(1..20);
                hist.push(0, Write(v), s, e);
                write_spans.push((s, e));
                t = e + rng.gen_range(0..5);
            }
            for client in 1..=2usize {
                let mut rt = rng.gen_range(0..10u64);
                for _ in 0..2 {
                    let s = rt;
                    let e = s + rng.gen_range(1..15);
                    let v = rng.gen_range(0..=writes);
                    hist.push(client, Read(v), s, e);
                    rt = e + rng.gen_range(1..10);
                }
            }
            let fast = is_atomic_swmr(&hist);
            let slow = matches!(check_linearizable(&hist), CheckResult::Linearizable);
            assert_eq!(fast, slow, "disagreement on:\n{hist:?}");
            agreements += 1;
        }
        assert_eq!(agreements, 300);
    }
}
