//! Failure oracles: pluggable pass/fail predicates over histories.
//!
//! The nemesis test fleet decides "did this run fail?" in more than one
//! way — single-writer atomicity (linear-time checker), general
//! linearizability (Wing–Gong search), or execution-digest divergence
//! between two same-seed runs. The campaign **shrinker**
//! (`abd-simnet::shrink`) needs that decision as a value it can re-apply to
//! every shrunk candidate, so this module reifies it: a [`HistoryOracle`]
//! inspects a replayed history and returns `None` (property holds) or
//! `Some(reason)` (property violated, with a human-readable explanation).
//!
//! Digest divergence is not a history property — it is decided by the
//! replay harness comparing two runs — so it has no oracle here; the
//! harness layers it on top (see `abd-simnet::repro::OracleSpec`).

use crate::history::History;
use crate::regularity::{check_regular_swmr, find_new_old_inversions, is_atomic_swmr};
use crate::sc::{check_sequential_with_limit, ScCheckResult, DEFAULT_SC_STATE_LIMIT};
use crate::wg::{check_linearizable_with_limit, CheckResult};
use std::hash::Hash;

/// A pass/fail predicate over a register history.
///
/// Implementations must be **deterministic**: the shrinker replays a
/// candidate schedule, asks the oracle once, and caches the verdict — a
/// flaky oracle would make shrinking diverge.
pub trait HistoryOracle<V> {
    /// Short stable name, recorded in repro artifacts.
    fn name(&self) -> &'static str;

    /// `Some(reason)` if `h` violates the property this oracle checks.
    fn violation(&self, h: &History<V>) -> Option<String>;
}

/// Single-writer atomicity via the linear-time unique-value checker
/// ([`is_atomic_swmr`]). The violation message names the first new/old
/// inversion found, when there is one.
#[derive(Clone, Copy, Default, Debug)]
pub struct AtomicSwmrOracle;

impl<V: Eq + Hash + std::fmt::Debug> HistoryOracle<V> for AtomicSwmrOracle {
    fn name(&self) -> &'static str {
        "atomic-swmr"
    }

    fn violation(&self, h: &History<V>) -> Option<String> {
        if is_atomic_swmr(h) {
            return None;
        }
        let detail = find_new_old_inversions(h)
            .into_iter()
            .next()
            .map(|a| format!(": {a:?}"))
            .unwrap_or_default();
        Some(format!("history is not atomic (SWMR checker){detail}"))
    }
}

/// General linearizability via the memoized Wing–Gong search, with a state
/// budget so adversarial histories cannot hang the shrinker. A search that
/// exhausts its budget counts as a **pass** (no violation proven) — the
/// shrinker must never keep a candidate on an unproven verdict.
#[derive(Clone, Copy, Debug)]
pub struct LinearizableOracle {
    /// Maximum number of memoized search states to explore.
    pub state_limit: usize,
}

impl Default for LinearizableOracle {
    fn default() -> Self {
        LinearizableOracle {
            state_limit: 1_000_000,
        }
    }
}

impl<V: Eq + Hash + Clone + std::fmt::Debug> HistoryOracle<V> for LinearizableOracle {
    fn name(&self) -> &'static str {
        "linearizable"
    }

    fn violation(&self, h: &History<V>) -> Option<String> {
        match check_linearizable_with_limit(h, self.state_limit) {
            CheckResult::Linearizable => None,
            CheckResult::NotLinearizable => {
                Some("history is not linearizable (Wing-Gong search)".to_string())
            }
            CheckResult::Unknown => None,
        }
    }
}

/// Sequential consistency via the exact memoized search in [`crate::sc`],
/// with the same budget discipline as [`LinearizableOracle`]: an exhausted
/// search counts as a pass (no violation proven).
///
/// Sits strictly between [`AtomicSwmrOracle`] and [`RegularOracle`] in the
/// consistency hierarchy: every atomic history is sequential, and a
/// sequential violation that regularity cannot see is exactly a *same
/// client* observing values against its own program order.
#[derive(Clone, Copy, Debug)]
pub struct SequentialConsistencyOracle {
    /// Maximum number of memoized search states to explore.
    pub state_limit: usize,
}

impl Default for SequentialConsistencyOracle {
    fn default() -> Self {
        SequentialConsistencyOracle {
            state_limit: DEFAULT_SC_STATE_LIMIT,
        }
    }
}

impl<V: Eq + Hash + Clone + std::fmt::Debug> HistoryOracle<V> for SequentialConsistencyOracle {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn violation(&self, h: &History<V>) -> Option<String> {
        match check_sequential_with_limit(h, self.state_limit) {
            ScCheckResult::Sequential => None,
            ScCheckResult::NotSequential => Some(
                "history is not sequentially consistent (no total order respects program order)"
                    .to_string(),
            ),
            ScCheckResult::Unknown => None,
        }
    }
}

/// Regularity for single-writer unique-value histories, via the linear-time
/// detectors in [`crate::regularity`]: a violation is a phantom value, a
/// read of an overwritten (stale) value, or a read of a not-yet-started
/// write. New/old inversions are deliberately *not* flagged — they are what
/// separates regular from atomic.
#[derive(Clone, Copy, Default, Debug)]
pub struct RegularOracle;

impl<V: Eq + Hash + std::fmt::Debug> HistoryOracle<V> for RegularOracle {
    fn name(&self) -> &'static str {
        "regular-swmr"
    }

    fn violation(&self, h: &History<V>) -> Option<String> {
        check_regular_swmr(h)
            .into_iter()
            .next()
            .map(|a| format!("history is not regular (SWMR checker): {a:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RegAction;

    fn stale_history() -> History<u32> {
        let mut h = History::new(0u32);
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(1), 20, 30);
        h.push(2, RegAction::Read(0), 40, 50); // stale after a newer read
        h
    }

    #[test]
    fn atomic_oracle_passes_clean_history() {
        let mut h = History::new(0u32);
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(1), 20, 30);
        assert_eq!(AtomicSwmrOracle.violation(&h), None);
        assert_eq!(HistoryOracle::<u32>::name(&AtomicSwmrOracle), "atomic-swmr");
    }

    #[test]
    fn atomic_oracle_flags_stale_read_with_reason() {
        let v = AtomicSwmrOracle.violation(&stale_history());
        assert!(v.is_some());
        assert!(v.unwrap().contains("not atomic"));
    }

    #[test]
    fn linearizable_oracle_agrees_on_both_verdicts() {
        let o = LinearizableOracle::default();
        assert!(o.violation(&stale_history()).is_some());
        let mut h = History::new(0u32);
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(1), 20, 30);
        assert_eq!(o.violation(&h), None);
    }

    /// Cross-client new/old inversion under a concurrent write: not
    /// atomic, but both sequentially consistent and regular.
    fn cross_client_inversion_history() -> History<u32> {
        let mut h = History::new(0u32);
        h.push(0, RegAction::Write(1), 0, 100);
        h.push(1, RegAction::Read(1), 10, 20);
        h.push(2, RegAction::Read(0), 30, 40);
        h
    }

    /// The same inversion observed by a *single* client: still regular
    /// (both reads race the write) but no longer sequentially consistent —
    /// the client's own view moved backwards.
    fn same_client_inversion_history() -> History<u32> {
        let mut h = History::new(0u32);
        h.push(0, RegAction::Write(1), 0, 100);
        h.push(1, RegAction::Read(1), 10, 20);
        h.push(1, RegAction::Read(0), 30, 40);
        h
    }

    #[test]
    fn tier_discrimination_matrix() {
        let sc_oracle = SequentialConsistencyOracle::default();
        // Cross-client inversion: atomic ✗, sequential ✓, regular ✓.
        let inv = cross_client_inversion_history();
        assert!(AtomicSwmrOracle.violation(&inv).is_some());
        assert_eq!(sc_oracle.violation(&inv), None);
        assert_eq!(RegularOracle.violation(&inv), None);
        // Same-client inversion: atomic ✗, sequential ✗, regular ✓.
        let same = same_client_inversion_history();
        assert!(AtomicSwmrOracle.violation(&same).is_some());
        assert!(sc_oracle.violation(&same).is_some());
        assert_eq!(RegularOracle.violation(&same), None);
        // Phantom (never-written) value: every tier rejects.
        let mut ph = History::new(0u32);
        ph.push(0, RegAction::Write(1), 0, 10);
        ph.push(1, RegAction::Read(42), 20, 30);
        assert!(AtomicSwmrOracle.violation(&ph).is_some());
        assert!(sc_oracle.violation(&ph).is_some());
        assert!(RegularOracle.violation(&ph).is_some());
    }

    #[test]
    fn tier_oracle_names_are_stable() {
        assert_eq!(
            HistoryOracle::<u32>::name(&SequentialConsistencyOracle::default()),
            "sequential"
        );
        assert_eq!(HistoryOracle::<u32>::name(&RegularOracle), "regular-swmr");
    }

    #[test]
    fn regular_oracle_reason_names_the_anomaly() {
        let mut h = History::new(0u32);
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(7), 20, 30);
        let v = RegularOracle.violation(&h).unwrap();
        assert!(v.contains("not regular"), "{v}");
    }

    #[test]
    fn sc_oracle_exhausted_budget_is_not_a_violation() {
        let mut h = History::new(0u32);
        for c in 0..6 {
            h.push(c, RegAction::Write(c as u32 + 1), 0, 100);
        }
        let o = SequentialConsistencyOracle { state_limit: 1 };
        assert_eq!(o.violation(&h), None);
    }

    #[test]
    fn exhausted_search_budget_is_not_a_violation() {
        // A wide contended history with a 1-state budget: the search gives
        // up immediately, which must read as "no violation proven".
        let mut h = History::new(0u32);
        for c in 0..6 {
            h.push(c, RegAction::Write(c as u32 + 1), 0, 100);
        }
        let o = LinearizableOracle { state_limit: 1 };
        assert_eq!(o.violation(&h), None);
    }
}
