//! A Wing–Gong style linearizability checker for register histories.
//!
//! The checker searches for a *linearization*: a total order of the
//! operations that (a) respects real time — if `a` responded before `b` was
//! invoked, `a` comes first — and (b) is legal for a sequential read/write
//! register — every read returns the most recently written value. Pending
//! writes (from crashed clients) are optional: they may take effect at any
//! point after their invocation, or never.
//!
//! The search memoizes on `(set of linearized operations, current value)`,
//! the standard Wing–Gong optimization: two interleavings that linearized
//! the same set and left the register in the same state are
//! interchangeable. Register histories prune very well in practice; a
//! configurable state cap turns pathological cases into an explicit
//! [`CheckResult::Unknown`] instead of an unbounded search.

use crate::history::{History, RegAction};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Verdict of a linearizability check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckResult {
    /// A linearization exists (the history is atomic).
    Linearizable,
    /// No linearization exists (the history is **not** atomic).
    NotLinearizable,
    /// The state cap was hit before the search concluded.
    Unknown,
}

/// Default cap on distinct memoized states explored.
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

#[derive(Clone, PartialEq, Eq, Hash)]
struct StateKey {
    done: Vec<u64>,
    value: u32,
}

struct Op {
    client: usize,
    start: u64,
    end: Option<u64>, // None for pending writes
    kind: Kind,
}

/// Real-time (plus program-order) precedence: `j` must be linearized before
/// `i`. Distinct clients are ordered only when `j` responded strictly before
/// `i` was invoked; operations of the *same* (sequential) client are also
/// ordered when their intervals merely touch (`j.end == i.start`), with the
/// original history index breaking ties between degenerate equal intervals.
fn precedes(j: &Op, jdx: usize, i: &Op, idx: usize) -> bool {
    let Some(jend) = j.end else { return false };
    if jend < i.start {
        return true;
    }
    j.client == i.client
        && jend <= i.start
        && (j.start < i.start || (j.start == i.start && jdx < idx))
}

enum Kind {
    Write(u32),
    Read(u32),
}

/// Checks linearizability with the default state cap.
pub fn check_linearizable<V: Eq + Hash + Clone>(h: &History<V>) -> CheckResult {
    check_linearizable_with_limit(h, DEFAULT_STATE_LIMIT)
}

/// Checks linearizability, giving up with [`CheckResult::Unknown`] after
/// exploring `state_limit` distinct states.
pub fn check_linearizable_with_limit<V: Eq + Hash + Clone>(
    h: &History<V>,
    state_limit: usize,
) -> CheckResult {
    // Intern values as dense indices; index 0 is the initial value.
    let mut dense: HashMap<V, u32> = HashMap::new();
    dense.insert(h.initial().clone(), 0);
    let idx = |v: &V, dense: &mut HashMap<V, u32>| -> u32 {
        if let Some(&i) = dense.get(v) {
            i
        } else {
            let i = dense.len() as u32;
            dense.insert(v.clone(), i);
            i
        }
    };

    let mut ops: Vec<Op> = Vec::with_capacity(h.len() + h.pending_writes().len());
    for c in h.ops() {
        let kind = match &c.action {
            RegAction::Write(v) => Kind::Write(idx(v, &mut dense)),
            RegAction::Read(v) => Kind::Read(idx(v, &mut dense)),
        };
        ops.push(Op {
            client: c.client,
            start: c.start,
            end: Some(c.end),
            kind,
        });
    }
    let completed = ops.len();
    for (client, v, start) in h.pending_writes() {
        let kind = Kind::Write(idx(v, &mut dense));
        ops.push(Op {
            client: *client,
            start: *start,
            end: None,
            kind,
        });
    }

    let total = ops.len();
    if completed == 0 {
        return CheckResult::Linearizable;
    }

    // predecessors[i] = ops that must be linearized before i can be.
    let preds: Vec<Vec<usize>> = (0..total)
        .map(|i| {
            (0..total)
                .filter(|&j| j != i)
                .filter(|&j| precedes(&ops[j], j, &ops[i], i))
                .collect()
        })
        .collect();

    let words = total.div_ceil(64);
    let full_completed: Vec<u64> = {
        let mut w = vec![0u64; words];
        for (i, word) in w.iter_mut().enumerate() {
            for b in 0..64 {
                let id = i * 64 + b;
                if id < completed {
                    *word |= 1 << b;
                }
            }
        }
        w
    };

    let mut visited: HashSet<StateKey> = HashSet::new();
    let mut stack: Vec<StateKey> = vec![StateKey {
        done: vec![0u64; words],
        value: 0,
    }];
    visited.insert(stack[0].clone());

    let is_done = |done: &[u64], i: usize| done[i / 64] & (1 << (i % 64)) != 0;

    while let Some(state) = stack.pop() {
        // Success: every *completed* op linearized (pending may dangle).
        if state
            .done
            .iter()
            .zip(&full_completed)
            .all(|(d, f)| d & f == *f)
        {
            return CheckResult::Linearizable;
        }
        if visited.len() >= state_limit {
            return CheckResult::Unknown;
        }
        for i in 0..total {
            if is_done(&state.done, i) {
                continue;
            }
            if preds[i].iter().any(|&j| !is_done(&state.done, j)) {
                continue;
            }
            let next_value = match ops[i].kind {
                Kind::Write(v) => v,
                Kind::Read(v) => {
                    if v != state.value {
                        continue;
                    }
                    state.value
                }
            };
            let mut done = state.done.clone();
            done[i / 64] |= 1 << (i % 64);
            let key = StateKey {
                done,
                value: next_value,
            };
            if visited.insert(key.clone()) {
                stack.push(key);
            }
        }
    }
    CheckResult::NotLinearizable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::history::RegAction::{Read, Write};

    fn lin<V: Eq + Hash + Clone>(h: &History<V>) -> bool {
        match check_linearizable(h) {
            CheckResult::Linearizable => true,
            CheckResult::NotLinearizable => false,
            CheckResult::Unknown => panic!("state limit hit in test"),
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<u32> = History::new(0);
        assert!(lin(&h));
    }

    #[test]
    fn sequential_write_then_read() {
        let mut h = History::new(0);
        h.push(0, Write(1), 0, 10);
        h.push(1, Read(1), 20, 30);
        assert!(lin(&h));
    }

    #[test]
    fn read_of_initial_value() {
        let mut h = History::new(7);
        h.push(0, Read(7), 0, 10);
        assert!(lin(&h));
    }

    #[test]
    fn read_of_never_written_value_fails() {
        let mut h = History::new(0);
        h.push(0, Write(1), 0, 10);
        h.push(1, Read(9), 20, 30);
        assert!(!lin(&h));
    }

    #[test]
    fn stale_read_after_completed_write_fails() {
        let mut h = History::new(0);
        h.push(0, Write(1), 0, 10);
        h.push(1, Read(0), 20, 30); // write finished at 10; read must see 1
        assert!(!lin(&h));
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        for ret in [0u32, 1] {
            let mut h = History::new(0);
            h.push(0, Write(1), 0, 100);
            h.push(1, Read(ret), 50, 60); // overlaps the write
            assert!(
                lin(&h),
                "read returning {ret} concurrent with write is fine"
            );
        }
    }

    #[test]
    fn new_old_inversion_fails() {
        // The anomaly the write-back prevents: r1 finishes before r2 starts,
        // r1 sees the new value, r2 the old one.
        let mut h = History::new(0);
        h.push(0, Write(1), 0, 100); // write concurrent with both reads
        h.push(1, Read(1), 10, 20);
        h.push(2, Read(0), 30, 40);
        assert!(!lin(&h));
        // Swapped returns are fine (old then new).
        let mut h2 = History::new(0);
        h2.push(0, Write(1), 0, 100);
        h2.push(1, Read(0), 10, 20);
        h2.push(2, Read(1), 30, 40);
        assert!(lin(&h2));
    }

    #[test]
    fn pending_write_may_take_effect() {
        let mut h = History::new(0);
        h.push_pending_write(0, 5, 0);
        h.push(1, Read(5), 10, 20);
        assert!(lin(&h), "pending write observed by a read");
    }

    #[test]
    fn pending_write_may_never_take_effect() {
        let mut h = History::new(0);
        h.push_pending_write(0, 5, 0);
        h.push(1, Read(0), 10, 20);
        assert!(lin(&h), "pending write ignored");
    }

    #[test]
    fn pending_write_cannot_take_effect_before_invocation() {
        let mut h = History::new(0);
        h.push(1, Read(5), 0, 10); // reads 5 before the pending write started
        h.push_pending_write(0, 5, 50);
        assert!(!lin(&h));
    }

    #[test]
    fn multi_writer_interleaving() {
        // Two concurrent writes, then reads that must agree on a single
        // winner order: 2 then 1 is observable only if w1 is ordered last.
        let mut h = History::new(0);
        h.push(0, Write(1), 0, 50);
        h.push(1, Write(2), 0, 50);
        h.push(2, Read(2), 60, 70);
        h.push(2, Read(2), 80, 90);
        assert!(lin(&h));
        // But flip-flopping reads after both writes completed are invalid.
        let mut h2 = History::new(0);
        h2.push(0, Write(1), 0, 50);
        h2.push(1, Write(2), 0, 50);
        h2.push(2, Read(2), 60, 70);
        h2.push(2, Read(1), 80, 90);
        h2.push(2, Read(2), 100, 110);
        assert!(!lin(&h2));
    }

    #[test]
    fn long_sequential_history_is_fast() {
        let mut h = History::new(0u64);
        let mut t = 0;
        for v in 1..=300u64 {
            h.push(0, Write(v), t, t + 5);
            h.push(1, Read(v), t + 10, t + 15);
            t += 20;
        }
        assert!(lin(&h));
    }

    #[test]
    fn limit_yields_unknown() {
        // Many fully concurrent writes: state space explodes; a tiny limit
        // must surface Unknown rather than hang or guess.
        let mut h = History::new(0u32);
        for i in 0..20 {
            h.push(i, Write(i as u32 + 1), 0, 1000);
        }
        h.push(30, Read(999), 2000, 2001); // unsatisfiable
        assert_eq!(check_linearizable_with_limit(&h, 100), CheckResult::Unknown);
    }

    #[test]
    fn read_own_write_across_clients_respects_real_time() {
        let mut h = History::new(0);
        h.push(0, Write(1), 0, 10);
        h.push(0, Write(2), 20, 30);
        h.push(1, Read(1), 40, 50); // 2 was completed at 30: stale
        assert!(!lin(&h));
    }
}
