//! Sequential-consistency checker for register histories.
//!
//! Sequential consistency (Lamport) asks for a *total order* over all
//! operations that (a) respects every client's program order and (b) makes
//! each read return the value of the latest preceding write (or the initial
//! value). Unlike linearizability there is **no real-time constraint**
//! across clients: a read may return an arbitrarily stale value as long as
//! each individual client's view only moves forward.
//!
//! For a single register the state is just "the current value", which makes
//! an exact memoized search tractable: a schedule state is fully described
//! by the per-client next-operation indices plus the current value. Two
//! interleavings reaching the same `(indices, value)` pair are
//! interchangeable, so the search memoizes on that pair — exact even with
//! duplicate written values.
//!
//! Pending writes (invoked, never completed) are merged into their client's
//! sequence as *optional* operations: the search may schedule them (the
//! write took effect before the crash) or skip them (it never did). This
//! mirrors how the Wing–Gong linearizability checker in [`crate::wg`]
//! treats pending operations.
//!
//! ## Example
//!
//! ```
//! use abd_lincheck::history::{History, RegAction};
//! use abd_lincheck::sc::{check_sequential, ScCheckResult};
//!
//! let mut h = History::new(0u32);
//! h.push(0, RegAction::Write(1), 0, 10);
//! // Client 1 reads stale 0 *after* the write completed: not atomic, but
//! // sequentially consistent (client 1's view is just behind).
//! h.push(1, RegAction::Read(0), 20, 30);
//! assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
//!
//! // The same client then re-reading an *older* value than it already saw
//! // violates program order and with it sequential consistency:
//! h.push(1, RegAction::Read(1), 40, 50);
//! h.push(1, RegAction::Read(0), 60, 70);
//! assert_eq!(check_sequential(&h), ScCheckResult::NotSequential);
//! ```

use crate::history::{History, RegAction};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;

/// Outcome of the sequential-consistency search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScCheckResult {
    /// A witnessing total order exists.
    Sequential,
    /// No total order respecting program order explains the history.
    NotSequential,
    /// The state budget was exhausted before the search concluded.
    Unknown,
}

/// Default bound on distinct `(indices, value)` states explored.
pub const DEFAULT_SC_STATE_LIMIT: usize = 1_000_000;

/// One entry of a client's program-order sequence.
#[derive(Clone, Copy, Debug)]
enum Entry {
    /// A completed read that returned the value id.
    Read(u32),
    /// A completed write of the value id.
    Write(u32),
    /// A pending write: may be scheduled or skipped.
    OptWrite(u32),
}

/// Checks sequential consistency with the default state budget.
pub fn check_sequential<V: Clone + Eq + Hash + std::fmt::Debug>(h: &History<V>) -> ScCheckResult {
    check_sequential_with_limit(h, DEFAULT_SC_STATE_LIMIT)
}

/// Checks sequential consistency, exploring at most `state_limit` distinct
/// memoized states before giving up with [`ScCheckResult::Unknown`].
///
/// The search is deterministic: clients are tried in ascending id order and
/// for a pending write the skip branch is explored before the schedule
/// branch, so repeated runs on one history always traverse identically.
pub fn check_sequential_with_limit<V: Clone + Eq + Hash + std::fmt::Debug>(
    h: &History<V>,
    state_limit: usize,
) -> ScCheckResult {
    // Intern values so states hash cheaply and compare by id.
    fn intern_ref<'a, V: Eq + Hash>(v: &'a V, lookup: &mut HashMap<&'a V, u32>) -> u32 {
        let next = lookup.len() as u32;
        *lookup.entry(v).or_insert(next)
    }
    let mut lookup: HashMap<&V, u32> = HashMap::new();

    let initial_id = intern_ref(h.initial(), &mut lookup);

    // Per-client sequences in program order (start-time order within a
    // client; `History::validate_sequential_clients` guarantees intervals
    // within one client do not overlap).
    let mut seqs: BTreeMap<usize, Vec<(u64, Entry)>> = BTreeMap::new();
    for op in h.ops() {
        let entry = match &op.action {
            RegAction::Write(v) => Entry::Write(intern_ref(v, &mut lookup)),
            RegAction::Read(v) => Entry::Read(intern_ref(v, &mut lookup)),
        };
        seqs.entry(op.client).or_default().push((op.start, entry));
    }
    for (client, v, start) in h.pending_writes() {
        let id = intern_ref(v, &mut lookup);
        seqs.entry(*client)
            .or_default()
            .push((*start, Entry::OptWrite(id)));
    }
    let mut clients: Vec<Vec<Entry>> = Vec::new();
    for (_, mut seq) in seqs {
        seq.sort_by_key(|(start, _)| *start);
        clients.push(seq.into_iter().map(|(_, e)| e).collect());
    }
    if clients.is_empty() {
        return ScCheckResult::Sequential;
    }

    // DFS over (per-client indices, current value id), memoized.
    type State = (Vec<u32>, u32);
    let start: State = (vec![0; clients.len()], initial_id);
    let mut seen: HashSet<State> = HashSet::new();
    let mut stack: Vec<State> = vec![start.clone()];
    seen.insert(start);
    while let Some((indices, current)) = stack.pop() {
        let done = clients.iter().zip(&indices).all(|(seq, &i)| {
            seq[i as usize..]
                .iter()
                .all(|e| matches!(e, Entry::OptWrite(_)))
        });
        if done {
            return ScCheckResult::Sequential;
        }
        for (c, seq) in clients.iter().enumerate() {
            let i = indices[c] as usize;
            if i >= seq.len() {
                continue;
            }
            let push = |value: u32, seen: &mut HashSet<State>, stack: &mut Vec<State>| {
                let mut next = indices.clone();
                next[c] += 1;
                let st = (next, value);
                if seen.insert(st.clone()) {
                    stack.push(st);
                }
            };
            match seq[i] {
                Entry::Read(v) => {
                    if v == current {
                        push(current, &mut seen, &mut stack);
                    }
                }
                Entry::Write(v) => push(v, &mut seen, &mut stack),
                Entry::OptWrite(v) => {
                    // Skip branch first (deterministic order), then take.
                    push(current, &mut seen, &mut stack);
                    push(v, &mut seen, &mut stack);
                }
            }
        }
        if seen.len() > state_limit {
            return ScCheckResult::Unknown;
        }
    }
    ScCheckResult::NotSequential
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h0() -> History<u64> {
        History::new(0u64)
    }

    #[test]
    fn empty_history_is_sequential() {
        assert_eq!(check_sequential(&h0()), ScCheckResult::Sequential);
    }

    #[test]
    fn linearizable_history_is_sequential() {
        let mut h = h0();
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(1), 20, 30);
        h.push(1, RegAction::Read(1), 40, 50);
        assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
    }

    #[test]
    fn cross_client_staleness_is_sequential() {
        // Client 1 reads fresh, client 2 reads stale, both after the write
        // completed — violates atomicity (new/old inversion across clients)
        // but not SC: order client 2's read before the write.
        let mut h = h0();
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(1), 20, 30);
        h.push(2, RegAction::Read(0), 40, 50);
        assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
    }

    #[test]
    fn same_client_new_old_inversion_is_not_sequential() {
        // One client observes v1 then v0 with v0 written before v1:
        // no total order respects its program order.
        let mut h = h0();
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(0, RegAction::Write(2), 20, 30);
        h.push(1, RegAction::Read(2), 40, 50);
        h.push(1, RegAction::Read(1), 60, 70);
        assert_eq!(check_sequential(&h), ScCheckResult::NotSequential);
    }

    #[test]
    fn pending_write_can_explain_a_read() {
        let mut h = h0();
        h.push(1, RegAction::Read(7), 10, 20);
        h.push_pending_write(0, 7, 5);
        assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
    }

    #[test]
    fn pending_write_may_be_skipped() {
        let mut h = h0();
        h.push_pending_write(0, 9, 5);
        h.push(1, RegAction::Read(0), 10, 20);
        assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
    }

    #[test]
    fn phantom_value_is_not_sequential() {
        let mut h = h0();
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(42), 20, 30);
        assert_eq!(check_sequential(&h), ScCheckResult::NotSequential);
    }

    #[test]
    fn write_read_write_read_interleaving_with_stale_tail() {
        // Clients may lag at different depths; SC only needs *some* global
        // order, so each client independently reading a prefix is fine.
        let mut h = h0();
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(0, RegAction::Write(2), 20, 30);
        h.push(0, RegAction::Write(3), 40, 50);
        h.push(1, RegAction::Read(1), 60, 70);
        h.push(1, RegAction::Read(3), 80, 90);
        h.push(2, RegAction::Read(2), 60, 70);
        assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
    }

    #[test]
    fn duplicate_written_values_stay_exact() {
        // Two writes of the same value: a read of it then a read of an
        // intermediate different value then the same value again is SC
        // (the two same-valued writes bracket the other one).
        let mut h = h0();
        h.push(0, RegAction::Write(5), 0, 10);
        h.push(0, RegAction::Write(6), 20, 30);
        h.push(0, RegAction::Write(5), 40, 50);
        h.push(1, RegAction::Read(5), 60, 70);
        h.push(1, RegAction::Read(6), 80, 90);
        h.push(1, RegAction::Read(5), 100, 110);
        assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
    }

    #[test]
    fn tiny_state_budget_reports_unknown() {
        let mut h = h0();
        for k in 1..=6u64 {
            h.push(0, RegAction::Write(k), k * 20, k * 20 + 10);
            h.push(1, RegAction::Read(k), k * 20 + 11, k * 20 + 15);
        }
        assert_eq!(check_sequential_with_limit(&h, 2), ScCheckResult::Unknown);
    }

    #[test]
    fn search_is_deterministic() {
        let mut h = h0();
        h.push(0, RegAction::Write(1), 0, 10);
        h.push(1, RegAction::Read(1), 5, 15);
        h.push_pending_write(2, 3, 7);
        for _ in 0..3 {
            assert_eq!(check_sequential(&h), ScCheckResult::Sequential);
        }
    }
}
